#include "netlog/netlog.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "openflow/codec.hpp"

namespace legosdn::netlog {
namespace {

/// Remaining lifetime of an entry when restored at `now`, per the paper:
/// "it adds it with the appropriate time-out information".
std::uint16_t remaining_timeout(std::uint16_t configured, SimTime since, SimTime now) {
  if (configured == 0) return 0;
  const std::int64_t elapsed_s = (raw(now) - raw(since)) / 1'000'000'000;
  if (elapsed_s >= configured) return 1; // about to expire; keep 1s grace
  return static_cast<std::uint16_t>(configured - elapsed_s);
}

constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  return (h ^ v) * kFnvPrime;
}

} // namespace

std::size_t NetLog::CounterKeyHash::operator()(const CounterKey& k) const noexcept {
  const of::Match& m = k.match;
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = mix(h, raw(k.dpid));
  h = mix(h, m.wildcards);
  h = mix(h, raw(m.in_port));
  h = mix(h, m.eth_src.to_uint64());
  h = mix(h, m.eth_dst.to_uint64());
  h = mix(h, m.eth_type);
  h = mix(h, m.ip_src.addr);
  h = mix(h, m.ip_dst.addr);
  h = mix(h, (std::uint64_t{m.ip_src_prefix} << 8) | m.ip_dst_prefix);
  h = mix(h, m.ip_proto);
  h = mix(h, (std::uint64_t{m.tp_src} << 16) | m.tp_dst);
  h = mix(h, k.priority);
  return static_cast<std::size_t>(h);
}

NetLog::NetLog(netsim::Network& net, NetLogConfig cfg) : net_(net), cfg_(cfg) {}

TxnId NetLog::begin(AppId app) {
  const TxnId id{next_txn_++};
  open_[id] = Txn{app, {}, {}, {}};
  stats_.begun += 1;
  return id;
}

netsim::FlowTable& NetLog::shadow_mut(DatapathId dpid) { return shadow_[dpid]; }

const netsim::FlowTable* NetLog::shadow(DatapathId dpid) const {
  auto it = shadow_.find(dpid);
  return it == shadow_.end() ? nullptr : &it->second;
}

void NetLog::touch(Txn& txn, DatapathId dpid) {
  if (std::find(txn.dpids.begin(), txn.dpids.end(), dpid) == txn.dpids.end()) {
    txn.dpids.push_back(dpid);
    // First touch: remember the shadow's pre-transaction structure digest
    // (O(1) with the incrementally-maintained digest) so rollback can verify
    // it restored this exact state.
    txn.pre_digest.emplace(dpid, shadow_mut(dpid).logical_digest());
  }
}

void NetLog::forward(const of::Message& msg) { net_.send_to_switch(msg); }

Status NetLog::apply(TxnId id, const of::Message& msg) {
  auto it = open_.find(id);
  if (it == open_.end())
    return Error{Error::Code::kNotFound, "no open transaction"};
  Txn& txn = it->second;
  stats_.messages += 1;

  if (const auto* mod = msg.get_if<of::FlowMod>()) {
    touch(txn, mod->dpid);
    if (cfg_.mode == Mode::kUndoLog) {
      record_undo(txn, *mod);
      stats_.undo_bytes_peak = std::max(stats_.undo_bytes_peak, undo_bytes(txn));
      forward(msg);
    } else {
      txn.buffered.push_back(msg);
    }
    return Status::success();
  }

  // Non-state-changing messages (packet-out, stats/barrier requests): nothing
  // to invert. Undo-log mode forwards them immediately; delay-buffer mode
  // holds them with the rest of the bundle, as the paper's prototype did.
  if (cfg_.mode == Mode::kDelayBuffer) {
    txn.buffered.push_back(msg);
  } else {
    forward(msg);
  }
  return Status::success();
}

void NetLog::record_undo(Txn& txn, const of::FlowMod& mod) {
  // Replay the mod through the shadow to learn exactly what it changes.
  netsim::FlowTable& shadow = shadow_mut(mod.dpid);
  const auto res = shadow.apply(mod, net_.now());
  if (!res.ok) return; // switch will reject it too; nothing to undo

  // Entries removed or overwritten: restore them (add with remaining
  // timeouts, counters preserved via the cache at rollback time).
  //
  // The shadow knows the *structure* of each entry but not its dataplane
  // counters/idle clock — only the switch does. The paper's NetLog "stores
  // and maintains the timeout and counter information of a flow table entry
  // before deleting it": we model that pre-delete query by reading the live
  // entry (record_undo runs before the delete is forwarded).
  auto live_entry = [&](const netsim::FlowEntry& e) -> const netsim::FlowEntry* {
    const netsim::SimSwitch* sw = net_.switch_at(mod.dpid);
    if (!sw || !sw->up()) return nullptr;
    return sw->table().find_strict(e.match, e.priority);
  };
  for (auto before : res.removed) {
    if (const netsim::FlowEntry* live = live_entry(before)) {
      before.packet_count = live->packet_count;
      before.byte_count = live->byte_count;
      before.install_time = live->install_time;
      before.last_used = live->last_used;
    }
    UndoOp op;
    op.inverse.dpid = mod.dpid;
    op.inverse.command = of::FlowModCommand::kAdd;
    op.inverse.match = before.match;
    op.inverse.priority = before.priority;
    op.inverse.cookie = before.cookie;
    op.inverse.idle_timeout =
        remaining_timeout(before.idle_timeout, before.last_used, net_.now());
    op.inverse.hard_timeout =
        remaining_timeout(before.hard_timeout, before.install_time, net_.now());
    op.inverse.send_flow_removed = before.send_flow_removed;
    op.inverse.actions = before.actions;
    op.cache_counters = true;
    op.packet_count = before.packet_count;
    op.byte_count = before.byte_count;
    // Exactly-once counter handoff: any ticks already cached for this flow
    // (lost to an earlier rollback) ride along with the undo op, and the
    // cache record is consumed *now*. If this transaction rolls back, the
    // merged total returns to the cache with the restored flow; if it
    // commits, the flow is genuinely gone — deleted or replaced with reset
    // counters — and the stale record must not leak onto a future flow with
    // the same (dpid, match, priority) identity.
    if (const auto cit = counter_cache_.find(
            CounterKey{mod.dpid, op.inverse.match, op.inverse.priority});
        cit != counter_cache_.end()) {
      op.packet_count += cit->second.packet_count;
      op.byte_count += cit->second.byte_count;
      counter_cache_.erase(cit);
    }
    txn.undo.push_back(std::move(op));
    stats_.undo_ops_recorded += 1;
  }
  // Entries modified in place: put the old actions/cookie back.
  for (const auto& before : res.modified) {
    UndoOp op;
    op.inverse.dpid = mod.dpid;
    op.inverse.command = of::FlowModCommand::kModifyStrict;
    op.inverse.match = before.match;
    op.inverse.priority = before.priority;
    op.inverse.cookie = before.cookie;
    op.inverse.actions = before.actions;
    txn.undo.push_back(std::move(op));
    stats_.undo_ops_recorded += 1;
  }
  // Entries newly added (and not replacements, which the removal-restore
  // above already reverts): delete them.
  for (const auto& added : res.added) {
    const bool replaced_existing = std::any_of(
        res.removed.begin(), res.removed.end(), [&](const netsim::FlowEntry& r) {
          return r.same_flow(added.match, added.priority);
        });
    if (replaced_existing) continue;
    UndoOp op;
    op.inverse.dpid = mod.dpid;
    op.inverse.command = of::FlowModCommand::kDeleteStrict;
    op.inverse.match = added.match;
    op.inverse.priority = added.priority;
    txn.undo.push_back(std::move(op));
    stats_.undo_ops_recorded += 1;
  }
}

std::size_t NetLog::undo_bytes(const Txn& txn) const {
  std::size_t total = 0;
  for (const auto& op : txn.undo) total += of::encode({0, op.inverse}).size();
  return total;
}

Status NetLog::commit(TxnId id) {
  auto it = open_.find(id);
  if (it == open_.end())
    return Error{Error::Code::kNotFound, "no open transaction"};
  Txn txn = std::move(it->second);
  open_.erase(it);

  if (cfg_.mode == Mode::kDelayBuffer) {
    // Release the bundle; shadows learn about the flow-mods now.
    for (const auto& msg : txn.buffered) {
      if (const auto* mod = msg.get_if<of::FlowMod>())
        shadow_mut(mod->dpid).apply(*mod, net_.now());
      forward(msg);
    }
  }
  if (cfg_.barrier_on_commit) {
    for (const DatapathId d : txn.dpids)
      forward({next_xid_++, of::BarrierRequest{d}});
  }
  // Cheap commit-time audit: every touched shadow should agree with the live
  // switch table structure-for-structure (both digests are O(1) to read).
  // Divergence means the shadow drifted — e.g. the switch idle-expired an
  // entry the shadow kept alive, or dropped messages while down.
  for (const DatapathId d : txn.dpids) {
    const netsim::SimSwitch* sw = net_.switch_at(d);
    if (!sw || !sw->up()) continue;
    const netsim::FlowTable* sh = shadow(d);
    stats_.shadow_sync_checks += 1;
    if (!sh || sh->logical_digest() != sw->table().logical_digest())
      stats_.shadow_sync_mismatches += 1;
  }
  stats_.committed += 1;
  return Status::success();
}

Status NetLog::rollback(TxnId id) {
  auto it = open_.find(id);
  if (it == open_.end())
    return Error{Error::Code::kNotFound, "no open transaction"};
  Txn txn = std::move(it->second);
  open_.erase(it);

  if (cfg_.mode == Mode::kUndoLog) {
    for (auto op = txn.undo.rbegin(); op != txn.undo.rend(); ++op) {
      // Keep the shadow in lock-step with the switch.
      shadow_mut(op->inverse.dpid).apply(op->inverse, net_.now());
      forward({next_xid_++, op->inverse});
      stats_.undo_ops_applied += 1;
      if (op->cache_counters && (op->packet_count || op->byte_count)) {
        CachedCounters& c = counter_cache_[CounterKey{
            op->inverse.dpid, op->inverse.match, op->inverse.priority}];
        c.packet_count += op->packet_count;
        c.byte_count += op->byte_count;
      }
    }
    if (cfg_.barrier_on_commit) {
      for (const DatapathId d : txn.dpids)
        forward({next_xid_++, of::BarrierRequest{d}});
    }
    // Verify the undo log actually inverted the transaction: each touched
    // shadow must be digest-identical to its pre-transaction state. This is
    // the paper's invertibility claim, checked in O(touched switches).
    for (const DatapathId d : txn.dpids) {
      stats_.rollback_digest_checks += 1;
      const auto pre = txn.pre_digest.find(d);
      const netsim::FlowTable* sh = shadow(d);
      if (pre == txn.pre_digest.end() || !sh ||
          sh->logical_digest() != pre->second)
        stats_.rollback_digest_mismatches += 1;
    }
  }
  // Delay-buffer mode: held messages simply evaporate.
  stats_.rolled_back += 1;
  return Status::success();
}

std::vector<DatapathId> NetLog::touched(TxnId id) const {
  auto it = open_.find(id);
  return it == open_.end() ? std::vector<DatapathId>{} : it->second.dpids;
}

void NetLog::correct_stats(of::StatsReply& reply) const {
  if (reply.kind != of::StatsKind::kFlow || counter_cache_.empty()) return;
  for (auto& f : reply.flows) {
    const auto it =
        counter_cache_.find(CounterKey{reply.dpid, f.match, f.priority});
    if (it == counter_cache_.end()) continue;
    f.packet_count += it->second.packet_count;
    f.byte_count += it->second.byte_count;
  }
}

std::vector<CounterCacheEntry> NetLog::counter_cache() const {
  std::vector<CounterCacheEntry> out;
  out.reserve(counter_cache_.size());
  for (const auto& [k, v] : counter_cache_)
    out.push_back({k.dpid, k.match, k.priority, v.packet_count, v.byte_count});
  return out;
}

void NetLog::expire_shadows(SimTime now) {
  for (auto& [_, table] : shadow_) {
    if (table.has_pending_expiry(now)) table.expire(now);
  }
}

void NetLog::observe_northbound(const of::Message& msg) {
  if (const auto* fr = msg.get_if<of::FlowRemoved>()) {
    of::FlowMod del;
    del.dpid = fr->dpid;
    del.command = of::FlowModCommand::kDeleteStrict;
    del.match = fr->match;
    del.priority = fr->priority;
    shadow_mut(fr->dpid).apply(del, net_.now());
    // The flow is gone for good (expiry or delete-with-notify): its final
    // counters were reported in the flow-removed itself, so any cached
    // rollback ticks die with it — a later flow reusing this identity
    // starts from zero.
    counter_cache_.erase(CounterKey{fr->dpid, fr->match, fr->priority});
  }
}

} // namespace legosdn::netlog
