#include "common/rng.hpp"

#include <cmath>

namespace legosdn {

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF sampling; clamp u away from 0 to avoid log(0).
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

} // namespace legosdn
