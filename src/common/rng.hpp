// Deterministic, seedable random number generation.
//
// Every stochastic component (traffic generators, fault injectors, workload
// sweeps) draws from an explicitly seeded Rng so that all tests and benchmarks
// are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <limits>

namespace legosdn {

/// xoshiro256** with a splitmix64 seeder. Small, fast, high quality.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // splitmix64 to fill state from a single seed.
    auto next = [&seed]() noexcept {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed value with given mean (for inter-arrivals).
  double exponential(double mean) noexcept;

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

} // namespace legosdn
