// Core identifier and address types shared across the whole stack.
//
// All identifiers are strong types (enum class or small structs) so that a
// switch id cannot be silently passed where a port number is expected.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace legosdn {

/// OpenFlow datapath identifier (one per switch).
enum class DatapathId : std::uint64_t {};

/// Switch-local port number. Values >= kMaxPhysicalPort are reserved.
enum class PortNo : std::uint16_t {};

constexpr std::uint16_t kMaxPhysicalPort = 0xFF00;

/// Reserved logical ports, mirroring OpenFlow 1.0 semantics.
namespace ports {
constexpr PortNo kFlood{0xFFFB};      ///< flood to all ports except ingress
constexpr PortNo kController{0xFFFD}; ///< send to controller (packet-in)
constexpr PortNo kLocal{0xFFFE};      ///< local switch stack
constexpr PortNo kNone{0xFFFF};       ///< wildcard / not present
} // namespace ports

constexpr std::uint64_t raw(DatapathId d) noexcept {
  return static_cast<std::uint64_t>(d);
}
constexpr std::uint16_t raw(PortNo p) noexcept {
  return static_cast<std::uint16_t>(p);
}

/// 48-bit Ethernet MAC address.
struct MacAddress {
  std::array<std::uint8_t, 6> octets{};

  auto operator<=>(const MacAddress&) const = default;

  /// Build a MAC from the low 48 bits of `v` (useful for synthetic hosts).
  static constexpr MacAddress from_uint64(std::uint64_t v) noexcept {
    MacAddress m;
    for (int i = 5; i >= 0; --i) {
      m.octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xFF);
      v >>= 8;
    }
    return m;
  }

  constexpr std::uint64_t to_uint64() const noexcept {
    std::uint64_t v = 0;
    for (auto o : octets) v = (v << 8) | o;
    return v;
  }

  constexpr bool is_broadcast() const noexcept {
    for (auto o : octets)
      if (o != 0xFF) return false;
    return true;
  }

  constexpr bool is_multicast() const noexcept { return (octets[0] & 0x01) != 0; }

  std::string to_string() const;
};

/// IPv4 address stored in host order.
struct IpV4 {
  std::uint32_t addr = 0;

  auto operator<=>(const IpV4&) const = default;

  static constexpr IpV4 from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                    std::uint8_t d) noexcept {
    return IpV4{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                (std::uint32_t{c} << 8) | std::uint32_t{d}};
  }

  std::string to_string() const;
};

/// Identifier of an SDN application instance registered with a controller.
enum class AppId : std::uint32_t {};

constexpr std::uint32_t raw(AppId a) noexcept { return static_cast<std::uint32_t>(a); }

/// Identifier of a NetLog transaction.
enum class TxnId : std::uint64_t {};

constexpr std::uint64_t raw(TxnId t) noexcept { return static_cast<std::uint64_t>(t); }

/// A directed link endpoint: (switch, port).
struct PortLocator {
  DatapathId dpid{};
  PortNo port{};

  auto operator<=>(const PortLocator&) const = default;
  std::string to_string() const;
};

} // namespace legosdn

template <> struct std::hash<legosdn::MacAddress> {
  std::size_t operator()(const legosdn::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_uint64());
  }
};

template <> struct std::hash<legosdn::IpV4> {
  std::size_t operator()(const legosdn::IpV4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.addr);
  }
};

template <> struct std::hash<legosdn::DatapathId> {
  std::size_t operator()(legosdn::DatapathId d) const noexcept {
    return std::hash<std::uint64_t>{}(legosdn::raw(d));
  }
};

template <> struct std::hash<legosdn::AppId> {
  std::size_t operator()(legosdn::AppId a) const noexcept {
    return std::hash<std::uint32_t>{}(legosdn::raw(a));
  }
};

template <> struct std::hash<legosdn::PortLocator> {
  std::size_t operator()(const legosdn::PortLocator& p) const noexcept {
    return std::hash<std::uint64_t>{}((legosdn::raw(p.dpid) << 16) ^
                                      legosdn::raw(p.port));
  }
};
