#include "common/types.hpp"

#include <cstdio>

namespace legosdn {

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0],
                octets[1], octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

std::string IpV4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
  return buf;
}

std::string PortLocator::to_string() const {
  return "s" + std::to_string(raw(dpid)) + ":p" + std::to_string(raw(port));
}

} // namespace legosdn
