// Small online-statistics helpers used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace legosdn {

/// Accumulates samples and reports summary statistics. Percentiles sort a
/// copy lazily, so it is fine for bench-sized sample counts.
class Summary {
public:
  void add(double x) {
    samples_.push_back(x);
    sum_ += x;
  }

  std::size_t count() const noexcept { return samples_.size(); }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }

  double min() const {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  /// p in [0, 100]. Nearest-rank on a sorted copy.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> s = samples_;
    std::sort(s.begin(), s.end());
    const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
  }

  void clear() {
    samples_.clear();
    sum_ = 0;
  }

private:
  std::vector<double> samples_;
  double sum_ = 0;
};

} // namespace legosdn
