// Small online-statistics helpers used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace legosdn {

/// Accumulates samples and reports summary statistics. Percentiles sort a
/// copy lazily, so it is fine for bench-sized sample counts.
class Summary {
public:
  void add(double x) {
    samples_.push_back(x);
    sum_ += x;
  }

  std::size_t count() const noexcept { return samples_.size(); }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
  }

  double min() const {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }
  double max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  /// p in [0, 100]. Nearest-rank on a sorted copy.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> s = samples_;
    std::sort(s.begin(), s.end());
    const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
  }

  /// Pool another accumulator's samples into this one (e.g. combining
  /// per-shard latency series into a whole-pipeline distribution).
  void merge(const Summary& o) {
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
    sum_ += o.sum_;
  }

  void clear() {
    samples_.clear();
    sum_ = 0;
  }

private:
  std::vector<double> samples_;
  double sum_ = 0;
};

/// Bounded-memory latency histogram with power-of-two microsecond buckets.
/// Unlike Summary it never grows, so long-lived transports (millions of RPCs)
/// can record every round trip. Percentiles are bucket-resolution estimates:
/// the geometric midpoint of the bucket holding the requested rank.
class LatencyHistogram {
public:
  void add(double us) {
    count_ += 1;
    sum_ += us;
    max_ = std::max(max_, us);
    buckets_[bucket_of(us)] += 1;
  }

  void merge(const LatencyHistogram& o) {
    count_ += o.count_;
    sum_ += o.sum_;
    max_ = std::max(max_, o.max_);
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double max() const noexcept { return max_; }

  /// p in [0, 100]; nearest-rank over the bucket counts.
  double percentile(double p) const {
    if (count_ == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) {
        // Bucket i covers (2^(i-1), 2^i]; report its geometric midpoint,
        // clamped to the observed maximum so p100 is never an overestimate.
        const double hi = static_cast<double>(1ULL << i);
        return std::min(i == 0 ? 1.0 : hi / 1.414213562373095, max_);
      }
    }
    return max_;
  }

  void clear() {
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    for (auto& b : buckets_) b = 0;
  }

private:
  static constexpr int kBuckets = 40; ///< up to ~2^39 us ≈ 6.4 days

  static int bucket_of(double us) noexcept {
    if (us <= 1.0) return 0;
    int b = 0;
    std::uint64_t v = static_cast<std::uint64_t>(us);
    while (v > 0 && b < kBuckets - 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  std::uint64_t buckets_[kBuckets]{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double max_ = 0;
};

} // namespace legosdn
