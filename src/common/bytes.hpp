// Big-endian (network order) byte buffer reader/writer used by the OpenFlow
// codec and the AppVisor RPC protocol.
//
// The writer owns a growable buffer; the reader is a non-owning cursor over a
// span of bytes. All read operations are bounds-checked and report failure via
// an error flag rather than throwing, so a truncated or malicious packet can
// never crash the parser (see tests/openflow/codec_fuzz_test.cpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace legosdn {

class ByteWriter {
public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void mac(const MacAddress& m) {
    buf_.insert(buf_.end(), m.octets.begin(), m.octets.end());
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// Length-prefixed (u32) byte string; used by the RPC layer.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    bytes(data);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Overwrite a previously written u16 at `offset` (for length fields that
  /// are only known once the body is serialized).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const noexcept { return buf_.size(); }
  std::span<const std::uint8_t> span() const noexcept { return buf_; }
  std::vector<std::uint8_t> take() && { return std::move(buf_); }
  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }

private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  std::uint8_t u8() noexcept {
    if (!require(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t u16() noexcept {
    if (!require(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() noexcept {
    std::uint32_t hi = u16();
    std::uint32_t lo = u16();
    return error_ ? 0 : (hi << 16) | lo;
  }

  std::uint64_t u64() noexcept {
    std::uint64_t hi = u32();
    std::uint64_t lo = u32();
    return error_ ? 0 : (hi << 32) | lo;
  }

  MacAddress mac() noexcept {
    MacAddress m;
    if (!require(6)) return m;
    std::memcpy(m.octets.data(), data_.data() + pos_, 6);
    pos_ += 6;
    return m;
  }

  std::vector<std::uint8_t> bytes(std::size_t n) {
    if (!require(n)) return {};
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::vector<std::uint8_t> blob() {
    std::uint32_t n = u32();
    if (error_ || n > remaining()) {
      error_ = true;
      return {};
    }
    return bytes(n);
  }

  std::string str() {
    auto b = blob();
    return {b.begin(), b.end()};
  }

  void skip(std::size_t n) noexcept {
    if (require(n)) pos_ += n;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool ok() const noexcept { return !error_; }
  bool error() const noexcept { return error_; }

private:
  bool require(std::size_t n) noexcept {
    if (error_ || data_.size() - pos_ < n) {
      error_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool error_ = false;
};

} // namespace legosdn
