// Lightweight leveled logger.
//
// Logging is off by default in tests and benchmarks (level kWarn); examples
// turn it up to kInfo so the recovery story is visible on the console.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>

namespace legosdn {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Log {
public:
  static LogLevel level() noexcept { return level_; }
  static void set_level(LogLevel l) noexcept { level_ = l; }

  static bool enabled(LogLevel l) noexcept { return l >= level_; }

  template <typename... Args>
  static void write(LogLevel l, const char* tag, const char* fmt, Args&&... args) {
    if (!enabled(l)) return;
    std::fprintf(stderr, "[%s] %-10s ", name(l), tag);
    if constexpr (sizeof...(Args) == 0) {
      std::fputs(fmt, stderr);
    } else {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-security"
      std::fprintf(stderr, fmt, std::forward<Args>(args)...);
#pragma GCC diagnostic pop
    }
    std::fputc('\n', stderr);
  }

private:
  static const char* name(LogLevel l) noexcept {
    switch (l) {
      case LogLevel::kTrace: return "TRACE";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF  ";
    }
    return "?";
  }

  static inline LogLevel level_ = LogLevel::kWarn;
};

#define LEGOSDN_LOG_TRACE(tag, ...) ::legosdn::Log::write(::legosdn::LogLevel::kTrace, tag, __VA_ARGS__)
#define LEGOSDN_LOG_DEBUG(tag, ...) ::legosdn::Log::write(::legosdn::LogLevel::kDebug, tag, __VA_ARGS__)
#define LEGOSDN_LOG_INFO(tag, ...) ::legosdn::Log::write(::legosdn::LogLevel::kInfo, tag, __VA_ARGS__)
#define LEGOSDN_LOG_WARN(tag, ...) ::legosdn::Log::write(::legosdn::LogLevel::kWarn, tag, __VA_ARGS__)
#define LEGOSDN_LOG_ERROR(tag, ...) ::legosdn::Log::write(::legosdn::LogLevel::kError, tag, __VA_ARGS__)

} // namespace legosdn
