// Virtual time for the discrete-event simulator.
//
// All simulator-side timestamps are SimTime (nanoseconds since simulation
// start). Only the real-process AppVisor backend touches the wall clock.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>

namespace legosdn {

/// Nanoseconds of virtual time since simulation start.
enum class SimTime : std::int64_t {};

constexpr std::int64_t raw(SimTime t) noexcept { return static_cast<std::int64_t>(t); }

constexpr SimTime operator+(SimTime t, std::chrono::nanoseconds d) noexcept {
  return SimTime{raw(t) + d.count()};
}
constexpr std::chrono::nanoseconds operator-(SimTime a, SimTime b) noexcept {
  return std::chrono::nanoseconds{raw(a) - raw(b)};
}
constexpr auto operator<=>(SimTime a, SimTime b) noexcept { return raw(a) <=> raw(b); }
constexpr bool operator==(SimTime a, SimTime b) noexcept { return raw(a) == raw(b); }

constexpr SimTime kSimStart{0};

inline constexpr SimTime from_us(std::int64_t us) noexcept { return SimTime{us * 1000}; }
inline constexpr SimTime from_ms(std::int64_t ms) noexcept {
  return SimTime{ms * 1'000'000};
}
inline constexpr double to_ms(SimTime t) noexcept { return static_cast<double>(raw(t)) / 1e6; }
inline constexpr double to_us(SimTime t) noexcept { return static_cast<double>(raw(t)) / 1e3; }

/// A monotonically advancing virtual clock owned by the simulator.
class SimClock {
public:
  SimTime now() const noexcept { return now_; }

  /// Advance to `t`. Time never moves backwards; advancing to the past is a
  /// programming error caught in debug builds and ignored in release.
  void advance_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }

  void advance_by(std::chrono::nanoseconds d) noexcept { now_ = now_ + d; }

  void reset() noexcept { now_ = kSimStart; }

private:
  SimTime now_ = kSimStart;
};

} // namespace legosdn
