// Minimal expected-like result type used for fallible operations that should
// not throw (codec parsing, RPC transport, rollback application).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace legosdn {

/// Error payload: a machine-readable code plus a human-readable message.
struct Error {
  enum class Code {
    kParse,        ///< malformed wire bytes
    kTruncated,    ///< ran out of bytes mid-message
    kUnsupported,  ///< known but unimplemented message/feature
    kNotFound,     ///< referenced entity does not exist
    kConflict,     ///< operation conflicts with current state
    kTimeout,      ///< peer did not respond in time
    kCrashed,      ///< the peer application crashed
    kIo,           ///< OS-level I/O failure
    kInvariant,    ///< network invariant violated
    kRejected,     ///< policy rejected the operation
  };

  Code code;
  std::string message;

  std::string to_string() const {
    static constexpr const char* names[] = {
        "parse",   "truncated", "unsupported", "not-found", "conflict",
        "timeout", "crashed",   "io",          "invariant", "rejected"};
    return std::string(names[static_cast<int>(code)]) + ": " + message;
  }
};

template <typename T> class Result {
public:
  Result(T value) : v_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

private:
  std::variant<T, Error> v_;
};

/// Result for operations with no payload.
class Status {
public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), ok_(false) {} // NOLINT

  static Status success() { return {}; }

  bool ok() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }
  const Error& error() const {
    assert(!ok_);
    return error_;
  }

private:
  Error error_{Error::Code::kIo, ""};
  bool ok_ = true;
};

} // namespace legosdn
