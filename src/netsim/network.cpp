#include "netsim/network.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/log.hpp"

namespace legosdn::netsim {
namespace {

/// (switch, ingress port, header) identity for dataplane loop detection.
/// Hashed (not ordered) because forward() is the hot path: flood fan-outs
/// insert one of these per copy per hop.
struct VisitKey {
  std::uint64_t dpid = 0;
  std::uint16_t port = 0;
  std::uint64_t hdr = 0;
  bool operator==(const VisitKey&) const = default;
};

struct VisitKeyHash {
  std::size_t operator()(const VisitKey& k) const noexcept {
    std::uint64_t h = k.dpid * 0x9E3779B97F4A7C15ULL;
    h ^= (std::uint64_t{k.port} << 48) + 0x517CC1B727220A95ULL + (h << 6) + (h >> 2);
    h ^= k.hdr + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// Apply a header-rewriting action to a packet copy.
void apply_set_field(const of::Action& a, of::Packet& pkt) {
  std::visit(
      [&](const auto& act) {
        using T = std::decay_t<decltype(act)>;
        if constexpr (std::is_same_v<T, of::ActionSetEthSrc>) {
          pkt.hdr.eth_src = act.mac;
        } else if constexpr (std::is_same_v<T, of::ActionSetEthDst>) {
          pkt.hdr.eth_dst = act.mac;
        } else if constexpr (std::is_same_v<T, of::ActionSetIpSrc>) {
          pkt.hdr.ip_src = act.ip;
        } else if constexpr (std::is_same_v<T, of::ActionSetIpDst>) {
          pkt.hdr.ip_dst = act.ip;
        } else if constexpr (std::is_same_v<T, of::ActionSetTpSrc>) {
          pkt.hdr.tp_src = act.port;
        } else if constexpr (std::is_same_v<T, of::ActionSetTpDst>) {
          pkt.hdr.tp_dst = act.port;
        }
      },
      a);
}

std::uint64_t header_digest(const of::PacketHeader& h) {
  std::uint64_t x = h.eth_src.to_uint64() * 0x9E3779B97F4A7C15ULL;
  x ^= h.eth_dst.to_uint64() + 0x517CC1B727220A95ULL;
  x ^= (std::uint64_t{h.eth_type} << 48) ^ (std::uint64_t{h.ip_src.addr} << 16) ^
       h.ip_dst.addr;
  x ^= (std::uint64_t{h.ip_proto} << 40) ^ (std::uint64_t{h.tp_src} << 20) ^ h.tp_dst;
  return x;
}

} // namespace

SimSwitch& Network::add_switch(DatapathId dpid, std::size_t n_ports) {
  auto [it, inserted] = switches_.try_emplace(dpid, std::make_unique<SimSwitch>(dpid));
  assert(inserted && "duplicate dpid");
  for (std::size_t i = 1; i <= n_ports; ++i) it->second->add_port(PortNo{static_cast<std::uint16_t>(i)});
  return *it->second;
}

void Network::add_link(PortLocator x, PortLocator y) {
  assert(switch_at(x.dpid) && switch_at(x.dpid)->has_port(x.port));
  assert(switch_at(y.dpid) && switch_at(y.dpid)->has_port(y.port));
  links_.push_back({x, y, true});
  link_index_[x] = links_.size() - 1;
  link_index_[y] = links_.size() - 1;
}

Host& Network::add_host(MacAddress mac, IpV4 ip, PortLocator attach) {
  assert(switch_at(attach.dpid) && switch_at(attach.dpid)->has_port(attach.port));
  hosts_.push_back({mac, ip, attach, 0, 0});
  host_index_[attach] = hosts_.size() - 1;
  mac_index_[mac] = hosts_.size() - 1;
  return hosts_.back();
}

SimSwitch* Network::switch_at(DatapathId dpid) {
  auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : it->second.get();
}

const SimSwitch* Network::switch_at(DatapathId dpid) const {
  auto it = switches_.find(dpid);
  return it == switches_.end() ? nullptr : it->second.get();
}

std::vector<DatapathId> Network::switch_ids() const {
  std::vector<DatapathId> out;
  out.reserve(switches_.size());
  for (const auto& [id, _] : switches_) out.push_back(id);
  return out;
}

Host* Network::host_by_mac(const MacAddress& mac) {
  auto it = mac_index_.find(mac);
  return it == mac_index_.end() ? nullptr : &hosts_[it->second];
}

const Host* Network::host_by_mac(const MacAddress& mac) const {
  auto it = mac_index_.find(mac);
  return it == mac_index_.end() ? nullptr : &hosts_[it->second];
}

const PortLocator* Network::link_peer(const PortLocator& loc) const {
  auto it = link_index_.find(loc);
  if (it == link_index_.end()) return nullptr;
  const Link& l = links_[it->second];
  if (!l.up) return nullptr;
  return l.a == loc ? &l.b : &l.a;
}

const Host* Network::host_at(const PortLocator& loc) const {
  auto it = host_index_.find(loc);
  return it == host_index_.end() ? nullptr : &hosts_[it->second];
}

bool Network::link_up(const PortLocator& loc) const {
  auto it = link_index_.find(loc);
  return it != link_index_.end() && links_[it->second].up;
}

Link* Network::find_link(const PortLocator& end) {
  auto it = link_index_.find(end);
  return it == link_index_.end() ? nullptr : &links_[it->second];
}

void Network::deliver_northbound(const of::Message& msg) {
  if (northbound_) northbound_(msg);
}

DeliveryResult Network::send_to_switch(const of::Message& msg) {
  DeliveryResult res;
  // PacketOut drives the forwarding engine directly.
  if (const auto* po = msg.get_if<of::PacketOut>()) {
    SimSwitch* sw = switch_at(po->dpid);
    if (!sw || !sw->up()) {
      res.drops = 1;
      return res;
    }
    of::Packet pkt = po->packet;
    PortNo in_port = po->in_port;
    if (po->buffer_id != of::PacketIn::kNoBuffer) {
      auto buffered = sw->take_buffered(po->buffer_id);
      if (!buffered) {
        deliver_northbound({msg.xid, of::OfError{po->dpid, of::OfErrorType::kBadRequest,
                                                 1, "unknown buffer"}});
        res.drops = 1;
        return res;
      }
      in_port = buffered->first;
      pkt = buffered->second;
    }
    Segment seg{po->dpid, in_port, pkt, 0};
    // Apply the packet-out action list at the origin switch.
    std::vector<Segment> work;
    for (const auto& a : po->actions) {
      if (const auto* out = std::get_if<of::ActionOutput>(&a)) {
        emit_out(seg, out->port, seg.pkt, work, res);
      } else {
        apply_set_field(a, seg.pkt);
      }
    }
    // Continue forwarding any copies that entered neighbouring switches.
    for (auto& s : work) {
      DeliveryResult sub = forward(std::move(s));
      res.delivered_to.insert(res.delivered_to.end(), sub.delivered_to.begin(),
                              sub.delivered_to.end());
      res.hops += sub.hops;
      res.punts += sub.punts;
      res.drops += sub.drops;
      res.looped = res.looped || sub.looped;
      res.path.insert(res.path.end(), sub.path.begin(), sub.path.end());
    }
    res.outcome = res.delivered() ? DeliveryResult::Outcome::kDelivered
                  : res.looped    ? DeliveryResult::Outcome::kLooped
                  : res.punts     ? DeliveryResult::Outcome::kPunted
                                  : DeliveryResult::Outcome::kDropped;
    // Controller-driven deliveries (buffered punt resumes, synthetic sends)
    // are the reactive path; without this the punt-then-forward flow never
    // shows up in delivery totals.
    if (res.delivered()) totals_.resumed_delivered += 1;
    return res;
  }

  DatapathId target{};
  bool have_target = false;
  std::visit(
      [&](const auto& m) {
        if constexpr (requires { m.dpid; }) {
          target = m.dpid;
          have_target = true;
        }
      },
      msg.body);
  if (!have_target) return res;
  SimSwitch* sw = switch_at(target);
  if (!sw) return res;
  std::vector<of::Message> replies;
  sw->handle_message(msg, clock_.now(), replies);
  // A flow-mod may have armed a new (earlier) timeout deadline.
  arm_switch_expiry(target);
  for (const auto& r : replies) deliver_northbound(r);
  return res;
}

DeliveryResult Network::inject_from_host(const MacAddress& src_host,
                                         const of::Packet& pkt) {
  const Host* h = host_by_mac(src_host);
  assert(h && "unknown host");
  return inject_at(h->attach, pkt);
}

DeliveryResult Network::inject_at(const PortLocator& ingress, const of::Packet& pkt) {
  totals_.injected += 1;
  DeliveryResult res = forward({ingress.dpid, ingress.port, pkt, 0});
  res.outcome = res.delivered() ? DeliveryResult::Outcome::kDelivered
                : res.looped    ? DeliveryResult::Outcome::kLooped
                : res.punts     ? DeliveryResult::Outcome::kPunted
                                : DeliveryResult::Outcome::kDropped;
  switch (res.outcome) {
    case DeliveryResult::Outcome::kDelivered: totals_.delivered += 1; break;
    case DeliveryResult::Outcome::kDropped: totals_.dropped += 1; break;
    case DeliveryResult::Outcome::kPunted: totals_.punted += 1; break;
    case DeliveryResult::Outcome::kLooped: totals_.looped += 1; break;
  }
  return res;
}

void Network::emit_out(const Segment& seg, PortNo out_port, const of::Packet& pkt,
                       std::vector<Segment>& work, DeliveryResult& res) {
  SimSwitch* sw = switch_at(seg.dpid);
  if (!sw) return;
  auto transmit_one = [&](PortNo p) {
    SwitchPort* sp = sw->port(p);
    if (!sp || !sp->desc.link_up) {
      if (sp) sp->drops += 1;
      res.drops += 1;
      return;
    }
    sp->tx_packets += 1;
    sp->tx_bytes += pkt.size_bytes;
    const PortLocator loc{seg.dpid, p};
    if (const Host* h = host_at(loc)) {
      // Hosts accept frames addressed to them, broadcast, or multicast.
      if (pkt.hdr.eth_dst == h->mac || pkt.hdr.eth_dst.is_broadcast() ||
          pkt.hdr.eth_dst.is_multicast()) {
        auto& mut = hosts_[host_index_.at(loc)];
        mut.rx_packets += 1;
        mut.rx_bytes += pkt.size_bytes;
        res.delivered_to.push_back(h->mac);
      } else {
        res.drops += 1; // NIC filters a frame not addressed to it
      }
      return;
    }
    if (const PortLocator* peer = link_peer(loc)) {
      work.push_back({peer->dpid, peer->port, pkt, seg.hops + 1});
      return;
    }
    res.drops += 1; // nothing attached
  };

  if (out_port == ports::kFlood) {
    for (const auto& [no, _] : sw->ports()) {
      if (no != seg.in_port) transmit_one(no);
    }
  } else if (out_port == ports::kController) {
    const std::uint32_t buf = sw->buffer_packet(seg.in_port, pkt);
    of::PacketIn pin;
    pin.dpid = seg.dpid;
    pin.buffer_id = buf;
    pin.in_port = seg.in_port;
    pin.reason = of::PacketInReason::kAction;
    pin.packet = pkt;
    res.punts += 1;
    deliver_northbound({0, pin});
  } else if (out_port == ports::kLocal || out_port == ports::kNone) {
    res.drops += 1;
  } else {
    transmit_one(out_port);
  }
}

DeliveryResult Network::forward(Segment seed) {
  DeliveryResult res;
  std::vector<Segment> work;
  work.push_back(std::move(seed));
  std::unordered_set<VisitKey, VisitKeyHash> visited;
  std::size_t copies = 0;

  while (!work.empty()) {
    Segment seg = std::move(work.back());
    work.pop_back();
    if (++copies > kCopyLimit || seg.hops > kHopLimit) {
      res.looped = true;
      break;
    }
    SimSwitch* sw = switch_at(seg.dpid);
    if (!sw || !sw->up()) {
      res.drops += 1;
      continue;
    }
    // Loop detection: the same header entering the same port twice means the
    // rules cycle (learning floods revisit switches but on different ports).
    const VisitKey key{raw(seg.dpid), raw(seg.in_port), header_digest(seg.pkt.hdr)};
    if (!visited.insert(key).second) {
      res.looped = true;
      res.drops += 1;
      continue;
    }
    res.path.push_back({seg.dpid, seg.in_port});
    res.hops += 1;
    if (SwitchPort* sp = sw->port(seg.in_port)) {
      sp->rx_packets += 1;
      sp->rx_bytes += seg.pkt.size_bytes;
    }
    const FlowEntry* entry = sw->table().match_packet(seg.in_port, seg.pkt.hdr,
                                                      seg.pkt.size_bytes, clock_.now());
    if (!entry) {
      // Table miss: buffer the packet and punt to the controller.
      const std::uint32_t buf = sw->buffer_packet(seg.in_port, seg.pkt);
      of::PacketIn pin;
      pin.dpid = seg.dpid;
      pin.buffer_id = buf;
      pin.in_port = seg.in_port;
      pin.reason = of::PacketInReason::kNoMatch;
      pin.packet = seg.pkt;
      res.punts += 1;
      deliver_northbound({0, pin});
      continue;
    }
    if (entry->actions.empty()) {
      res.drops += 1; // explicit drop rule
      continue;
    }
    of::Packet pkt = seg.pkt;
    for (const auto& a : entry->actions) {
      if (const auto* out = std::get_if<of::ActionOutput>(&a)) {
        emit_out(seg, out->port, pkt, work, res);
      } else {
        apply_set_field(a, pkt);
      }
    }
  }
  return res;
}

void Network::emit_port_status(const PortLocator& loc, bool up) {
  SimSwitch* sw = switch_at(loc.dpid);
  if (!sw || !sw->up()) return; // dead switches report nothing
  SwitchPort* sp = sw->port(loc.port);
  if (!sp) return;
  sp->desc.link_up = up;
  of::PortStatus ps;
  ps.dpid = loc.dpid;
  ps.reason = of::PortReason::kModify;
  ps.desc = sp->desc;
  deliver_northbound({0, ps});
}

bool Network::link_should_be_up(const Link& l) const {
  if (!l.admin_up) return false;
  const SimSwitch* sa = switch_at(l.a.dpid);
  const SimSwitch* sb = switch_at(l.b.dpid);
  return sa && sa->up() && sb && sb->up();
}

bool Network::reconcile_link(Link& l) {
  const bool eff = link_should_be_up(l);
  if (l.up == eff) return false;
  l.up = eff;
  for (const PortLocator& end : {l.a, l.b}) {
    SimSwitch* sw = switch_at(end.dpid);
    if (!sw) continue;
    if (sw->up()) {
      emit_port_status(end, eff);
    } else if (SwitchPort* sp = sw->port(end.port)) {
      sp->desc.link_up = eff; // dead switches update silently
    }
  }
  return true;
}

void Network::set_link_state(const PortLocator& end, bool up) {
  Link* l = find_link(end);
  if (!l) return;
  l->admin_up = up;
  reconcile_link(*l);
}

void Network::set_switch_state(DatapathId dpid, bool up) {
  SimSwitch* sw = switch_at(dpid);
  if (!sw || sw->up() == up) return;
  if (up) {
    sw->cold_restart();
    sw->set_up(true);
    // The cold restart cleared the table; retire any armed deadline so
    // stale heap records from the pre-crash life are skipped on pop.
    arm_switch_expiry(dpid);
  } else {
    sw->set_up(false);
  }
  // Attached links follow switch liveness, but administrative downs stick: a
  // bounce restores only links that were admin-up before (or during) the
  // outage, and only if the far endpoint is itself alive.
  for (auto& l : links_) {
    if (l.a.dpid != dpid && l.b.dpid != dpid) continue;
    reconcile_link(l);
  }
  if (switch_state_) switch_state_(dpid, up);
}

namespace {

/// Min-heap order for std::push_heap/pop_heap: earliest deadline first,
/// ties broken by dpid so multi-switch expiry waves stay deterministic.
bool expiry_rec_after(const std::int64_t da, const DatapathId a,
                      const std::int64_t db, const DatapathId b) noexcept {
  return da > db || (da == db && raw(a) > raw(b));
}

} // namespace

void Network::arm_switch_expiry(DatapathId dpid) {
  std::lock_guard<std::mutex> lk(expiry_mu_);
  arm_switch_expiry_locked(dpid);
}

void Network::arm_switch_expiry_locked(DatapathId dpid) {
  const SimSwitch* sw = switch_at(dpid);
  if (!sw) return;
  const std::int64_t dl = sw->table().earliest_deadline();
  if (dl == FlowTable::kNoDeadline) {
    // Nothing armed any more; any heap record left behind goes stale and is
    // skipped on pop (its armed_expiry_ entry no longer matches).
    armed_expiry_.erase(dpid);
    return;
  }
  const auto it = armed_expiry_.find(dpid);
  if (it != armed_expiry_.end() && it->second <= dl) return; // already due first
  armed_expiry_[dpid] = dl;
  expiry_heap_.push_back({dl, dpid});
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(),
                 [](const ExpiryRec& a, const ExpiryRec& b) {
                   return expiry_rec_after(a.deadline, a.dpid, b.deadline, b.dpid);
                 });
}

void Network::advance_time(std::chrono::nanoseconds delta) {
  clock_.advance_by(delta);
  const std::int64_t now_ns = raw(clock_.now());
  std::vector<of::Message> out;
  {
    std::lock_guard<std::mutex> lk(expiry_mu_);
    // The heap front is the earliest armed deadline network-wide (possibly an
    // over-approximation from a refreshed idle clock, never an under-one), so
    // the idle tick is a single comparison regardless of switch count.
    if (expiry_heap_.empty() || expiry_heap_.front().deadline > now_ns) return;
    const auto heap_cmp = [](const ExpiryRec& a, const ExpiryRec& b) {
      return expiry_rec_after(a.deadline, a.dpid, b.deadline, b.dpid);
    };
    while (!expiry_heap_.empty() && expiry_heap_.front().deadline <= now_ns) {
      std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), heap_cmp);
      const ExpiryRec rec = expiry_heap_.back();
      expiry_heap_.pop_back();
      const auto it = armed_expiry_.find(rec.dpid);
      if (it == armed_expiry_.end() || it->second != rec.deadline)
        continue; // stale: superseded by an earlier arm or a cold restart
      armed_expiry_.erase(it);
      SimSwitch* sw = switch_at(rec.dpid);
      if (!sw) continue;
      if (!sw->up()) continue; // down switches don't expire; re-armed on revival
      sw->expire_flows(clock_.now(), out);
      arm_switch_expiry_locked(rec.dpid); // next deadline, if any remain
    }
  }
  for (const auto& m : out) deliver_northbound(m);
}

// ---------------------------------------------------------------------------
// Canned topologies
// ---------------------------------------------------------------------------

namespace {

MacAddress host_mac(std::size_t i) {
  return MacAddress::from_uint64(0x0A0000000000ULL + i + 1);
}

IpV4 host_ip(std::size_t i) {
  return IpV4{IpV4::from_octets(10, 0, 0, 0).addr + static_cast<std::uint32_t>(i) + 1};
}

} // namespace

std::unique_ptr<Network> Network::linear(std::size_t n, std::size_t hosts_per_switch) {
  auto net = std::make_unique<Network>();
  // Ports: 1..hosts_per_switch for hosts, then left/right trunk ports.
  const auto left = PortNo{static_cast<std::uint16_t>(hosts_per_switch + 1)};
  const auto right = PortNo{static_cast<std::uint16_t>(hosts_per_switch + 2)};
  for (std::size_t i = 0; i < n; ++i)
    net->add_switch(DatapathId{i + 1}, hosts_per_switch + 2);
  for (std::size_t i = 0; i + 1 < n; ++i)
    net->add_link({DatapathId{i + 1}, right}, {DatapathId{i + 2}, left});
  std::size_t h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < hosts_per_switch; ++j, ++h) {
      net->add_host(host_mac(h), host_ip(h),
                    {DatapathId{i + 1}, PortNo{static_cast<std::uint16_t>(j + 1)}});
    }
  }
  return net;
}

std::unique_ptr<Network> Network::ring(std::size_t n, std::size_t hosts_per_switch) {
  auto net = linear(n, hosts_per_switch);
  if (n >= 3) {
    const auto left = PortNo{static_cast<std::uint16_t>(hosts_per_switch + 1)};
    const auto right = PortNo{static_cast<std::uint16_t>(hosts_per_switch + 2)};
    net->add_link({DatapathId{n}, right}, {DatapathId{1}, left});
  }
  return net;
}

std::unique_ptr<Network> Network::star(std::size_t n_leaves, std::size_t hosts_per_leaf) {
  auto net = std::make_unique<Network>();
  const DatapathId core{1};
  net->add_switch(core, n_leaves);
  std::size_t h = 0;
  for (std::size_t i = 0; i < n_leaves; ++i) {
    const DatapathId leaf{i + 2};
    net->add_switch(leaf, hosts_per_leaf + 1);
    const auto up = PortNo{static_cast<std::uint16_t>(hosts_per_leaf + 1)};
    net->add_link({leaf, up}, {core, PortNo{static_cast<std::uint16_t>(i + 1)}});
    for (std::size_t j = 0; j < hosts_per_leaf; ++j, ++h) {
      net->add_host(host_mac(h), host_ip(h),
                    {leaf, PortNo{static_cast<std::uint16_t>(j + 1)}});
    }
  }
  return net;
}

std::unique_ptr<Network> Network::fat_tree(std::size_t k) {
  if (k < 2 || k % 2 != 0) return nullptr; // real error path: assert is a
                                           // no-op under NDEBUG and a corrupt
                                           // topology is worse than none
  auto net = std::make_unique<Network>();
  const std::size_t half = k / 2;
  const std::size_t n_core = half * half;
  // Dpid layout: cores 1..n_core, then per pod: aggs, then edges.
  auto core_id = [&](std::size_t i) { return DatapathId{1 + i}; };
  auto agg_id = [&](std::size_t pod, std::size_t i) {
    return DatapathId{1 + n_core + pod * k + i};
  };
  auto edge_id = [&](std::size_t pod, std::size_t i) {
    return DatapathId{1 + n_core + pod * k + half + i};
  };
  for (std::size_t i = 0; i < n_core; ++i) net->add_switch(core_id(i), k);
  for (std::size_t pod = 0; pod < k; ++pod) {
    for (std::size_t i = 0; i < half; ++i) {
      net->add_switch(agg_id(pod, i), k);
      net->add_switch(edge_id(pod, i), k);
    }
    // edge <-> agg full mesh inside the pod
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t a = 0; a < half; ++a) {
        net->add_link({edge_id(pod, e), PortNo{static_cast<std::uint16_t>(half + a + 1)}},
                      {agg_id(pod, a), PortNo{static_cast<std::uint16_t>(e + 1)}});
      }
    }
    // agg <-> core
    for (std::size_t a = 0; a < half; ++a) {
      for (std::size_t c = 0; c < half; ++c) {
        const std::size_t core_idx = a * half + c;
        net->add_link({agg_id(pod, a), PortNo{static_cast<std::uint16_t>(half + c + 1)}},
                      {core_id(core_idx), PortNo{static_cast<std::uint16_t>(pod + 1)}});
      }
    }
  }
  // hosts on edge switches
  std::size_t h = 0;
  for (std::size_t pod = 0; pod < k; ++pod) {
    for (std::size_t e = 0; e < half; ++e) {
      for (std::size_t p = 0; p < half; ++p, ++h) {
        net->add_host(host_mac(h), host_ip(h),
                      {edge_id(pod, e), PortNo{static_cast<std::uint16_t>(p + 1)}});
      }
    }
  }
  return net;
}

std::unique_ptr<Network> Network::random(std::size_t n_switches,
                                         std::size_t extra_links,
                                         std::size_t hosts_per_switch,
                                         std::uint64_t seed) {
  if (n_switches < 2) return nullptr;
  auto net = std::make_unique<Network>();
  Rng rng(seed);
  // Ports 1..hosts_per_switch host hosts; trunk ports are allocated on
  // demand starting just above them.
  std::vector<std::uint16_t> next_trunk(n_switches,
                                        static_cast<std::uint16_t>(hosts_per_switch + 1));
  const std::size_t max_trunks = n_switches - 1 + extra_links;
  for (std::size_t i = 0; i < n_switches; ++i)
    net->add_switch(DatapathId{i + 1}, hosts_per_switch + max_trunks);

  auto connect = [&](std::size_t a, std::size_t b) {
    const PortLocator pa{DatapathId{a + 1}, PortNo{next_trunk[a]++}};
    const PortLocator pb{DatapathId{b + 1}, PortNo{next_trunk[b]++}};
    net->add_link(pa, pb);
  };
  // Random spanning tree: attach each new switch to a random earlier one.
  for (std::size_t i = 1; i < n_switches; ++i) connect(rng.below(i), i);
  // Extra edges between distinct pairs (duplicates allowed: parallel paths).
  for (std::size_t e = 0; e < extra_links; ++e) {
    const std::size_t a = rng.below(n_switches);
    std::size_t b = rng.below(n_switches);
    while (b == a) b = rng.below(n_switches);
    connect(a, b);
  }
  std::size_t h = 0;
  for (std::size_t i = 0; i < n_switches; ++i) {
    for (std::size_t j = 0; j < hosts_per_switch; ++j, ++h) {
      net->add_host(host_mac(h), host_ip(h),
                    {DatapathId{i + 1}, PortNo{static_cast<std::uint16_t>(j + 1)}});
    }
  }
  return net;
}

} // namespace legosdn::netsim
