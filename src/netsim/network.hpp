// The simulated network: switches, links, hosts, and the dataplane
// forwarding engine.
//
// Control-plane plumbing:
//  - the controller's southbound calls send_to_switch();
//  - switch-originated messages (packet-in, flow-removed, port-status,
//    stats/barrier/echo replies) are delivered through the northbound
//    callback;
//  - switch liveness transitions are delivered through the switch-state
//    callback (modelling the controller noticing a broken OF connection).
//
// Dataplane: inject() walks a packet through the network hop by hop,
// applying flow tables, header-rewriting actions, floods and controller
// punts, with loop detection via a hop cap and a visited-set.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "netsim/switch.hpp"
#include "openflow/messages.hpp"

namespace legosdn::netsim {

struct Host {
  MacAddress mac{};
  IpV4 ip{};
  PortLocator attach{};
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
};

struct Link {
  PortLocator a{};
  PortLocator b{};
  /// Effective state: admin_up AND both endpoint switches up. This is what
  /// the dataplane consults.
  bool up = true;
  /// Operator intent, set only by set_link_state(). A switch bounce takes
  /// attached links down and back up, but never overrides an administrative
  /// down: the link resurfaces only if admin_up is still true.
  bool admin_up = true;
};

/// Result of injecting one packet (or resuming a buffered one).
struct DeliveryResult {
  enum class Outcome { kDelivered, kDropped, kPunted, kLooped };

  Outcome outcome = Outcome::kDropped;
  std::vector<MacAddress> delivered_to; ///< hosts that received a copy
  std::size_t hops = 0;                 ///< switch traversals
  std::size_t punts = 0;                ///< packet-ins raised
  std::size_t drops = 0;                ///< copies that died
  bool looped = false;
  std::vector<PortLocator> path;        ///< ingress locators, in visit order

  bool delivered() const noexcept { return !delivered_to.empty(); }
};

class Network {
public:
  using NorthboundFn = std::function<void(const of::Message&)>;
  using SwitchStateFn = std::function<void(DatapathId, bool up)>;

  Network() = default;

  // Non-copyable: switches are identity objects.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology construction ---
  SimSwitch& add_switch(DatapathId dpid, std::size_t n_ports = 0);
  void add_link(PortLocator x, PortLocator y);
  Host& add_host(MacAddress mac, IpV4 ip, PortLocator attach);

  // --- canned topologies (hosts attached one per edge switch port) ---
  static std::unique_ptr<Network> linear(std::size_t n_switches,
                                         std::size_t hosts_per_switch = 1);
  static std::unique_ptr<Network> ring(std::size_t n_switches,
                                       std::size_t hosts_per_switch = 1);
  static std::unique_ptr<Network> star(std::size_t n_leaves,
                                       std::size_t hosts_per_leaf = 1);
  /// k-ary fat-tree (k even): k pods, k^2/4 core switches, k^3/4 hosts.
  /// Returns nullptr for invalid k (k < 2 or odd) — callers building from
  /// untrusted input (scenario scripts, fuzzers) must check; an assert alone
  /// would compile away under NDEBUG and hand back a corrupt topology.
  static std::unique_ptr<Network> fat_tree(std::size_t k);
  /// Random connected topology: a random spanning tree plus `extra_links`
  /// additional edges, `hosts_per_switch` hosts everywhere. Deterministic
  /// for a given seed. Returns nullptr when n_switches < 2.
  static std::unique_ptr<Network> random(std::size_t n_switches,
                                         std::size_t extra_links,
                                         std::size_t hosts_per_switch,
                                         std::uint64_t seed);

  // --- accessors ---
  SimSwitch* switch_at(DatapathId dpid);
  const SimSwitch* switch_at(DatapathId dpid) const;
  std::vector<DatapathId> switch_ids() const;
  const std::vector<Link>& links() const noexcept { return links_; }
  const std::vector<Host>& hosts() const noexcept { return hosts_; }
  Host* host_by_mac(const MacAddress& mac);
  const Host* host_by_mac(const MacAddress& mac) const;
  /// Peer of a switch port, if an up link is attached there.
  const PortLocator* link_peer(const PortLocator& loc) const;
  /// Host attached at a switch port, if any.
  const Host* host_at(const PortLocator& loc) const;
  bool link_up(const PortLocator& loc) const;

  SimClock& clock() noexcept { return clock_; }
  SimTime now() const noexcept { return clock_.now(); }

  // --- control plane ---
  void set_northbound(NorthboundFn fn) { northbound_ = std::move(fn); }
  void set_switch_state_callback(SwitchStateFn fn) { switch_state_ = std::move(fn); }

  /// Deliver a controller message to its switch. PacketOut is executed by the
  /// forwarding engine; everything else goes to SimSwitch::handle_message.
  /// Returns the result of any dataplane forwarding triggered (for PacketOut).
  DeliveryResult send_to_switch(const of::Message& msg);

  // --- dataplane ---
  /// Inject a packet from the named host into the network.
  DeliveryResult inject_from_host(const MacAddress& src_host, const of::Packet& pkt);
  /// Inject a packet arriving at a specific switch port (for tests).
  DeliveryResult inject_at(const PortLocator& ingress, const of::Packet& pkt);

  // --- failure operations ---
  void set_link_state(const PortLocator& end, bool up);
  void set_switch_state(DatapathId dpid, bool up);

  /// Advance virtual time and run flow expiry on every switch with a due
  /// deadline. A network-level lazy min-heap over each switch's earliest
  /// armed deadline (FlowTable::earliest_deadline) makes the nothing-due
  /// tick O(1) for the whole network, not O(switches). Down switches never
  /// expire flows; their heap records are discarded and re-armed on revival.
  void advance_time(std::chrono::nanoseconds delta);

  // --- global statistics ---
  struct Totals {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0; ///< injections whose first pass reached a host
    std::uint64_t dropped = 0;
    std::uint64_t punted = 0;
    std::uint64_t looped = 0;
    /// Packets a controller PacketOut delivered to at least one host —
    /// the reactive path: buffered punt resumes and synthetic sends. A punted
    /// injection that the controller then forwards counts once under `punted`
    /// and once here; `delivered + resumed_delivered` is the end-to-end count.
    std::uint64_t resumed_delivered = 0;
  };
  const Totals& totals() const noexcept { return totals_; }
  void reset_totals() { totals_ = {}; }

private:
  struct Segment {
    DatapathId dpid{};
    PortNo in_port{};
    of::Packet pkt{};
    std::size_t hops = 0;
  };

  /// Lazy min-heap record over switch expiry deadlines; validated against
  /// armed_expiry_ on pop, so stale records cost O(log n) once.
  struct ExpiryRec {
    std::int64_t deadline = 0;
    DatapathId dpid{};
  };

  DeliveryResult forward(Segment seed);
  void emit_out(const Segment& seg, PortNo out_port, const of::Packet& pkt,
                std::vector<Segment>& work, DeliveryResult& res);
  void deliver_northbound(const of::Message& msg);
  void emit_port_status(const PortLocator& loc, bool up);
  Link* find_link(const PortLocator& end);
  /// Effective link state implied by operator intent + switch liveness.
  bool link_should_be_up(const Link& l) const;
  /// Reconcile one link's effective state, updating port descriptors and
  /// emitting port-status on a transition. Returns true if the state changed.
  bool reconcile_link(Link& l);
  /// (Re)arm the expiry heap from a switch's current earliest deadline.
  /// Called wherever a switch's flow table can gain an earlier deadline:
  /// after southbound message handling and on switch revival. Dataplane
  /// traffic only ever *extends* idle deadlines, which the lazy records
  /// already over-approximate, so the forwarding path needs no hook.
  void arm_switch_expiry(DatapathId dpid);
  /// Heap/armed-map update with expiry_mu_ already held.
  void arm_switch_expiry_locked(DatapathId dpid);

  SimClock clock_;
  std::map<DatapathId, std::unique_ptr<SimSwitch>> switches_;
  std::vector<Link> links_;
  std::unordered_map<PortLocator, std::size_t> link_index_; ///< endpoint -> links_
  std::vector<Host> hosts_;
  std::unordered_map<PortLocator, std::size_t> host_index_; ///< attach -> hosts_
  std::unordered_map<MacAddress, std::size_t> mac_index_;

  NorthboundFn northbound_;
  SwitchStateFn switch_state_;
  Totals totals_;

  /// Guards the expiry heap + armed map. Sharded dispatch commits flow-mods
  /// to *different* switches concurrently (each under its own NetLog stripe),
  /// but the expiry bookkeeping is one network-wide structure.
  std::mutex expiry_mu_;
  std::vector<ExpiryRec> expiry_heap_; ///< min-heap via std::push_heap/pop_heap
  std::unordered_map<DatapathId, std::int64_t> armed_expiry_; ///< per-switch armed deadline

  static constexpr std::size_t kHopLimit = 128;
  static constexpr std::size_t kCopyLimit = 4096; ///< flood explosion guard
};

} // namespace legosdn::netsim
