// A simulated OpenFlow switch: ports, flow table, packet buffers, counters,
// and southbound message handling (flow-mod, stats, barrier, echo, features).
//
// Dataplane forwarding across switches lives in Network; the switch only
// decides what happens to a packet locally.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "netsim/flow_table.hpp"
#include "openflow/messages.hpp"

namespace legosdn::netsim {

struct SwitchPort {
  of::PortDesc desc{};
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t drops = 0;
};

class SimSwitch {
public:
  explicit SimSwitch(DatapathId dpid) : dpid_(dpid) {}

  DatapathId dpid() const noexcept { return dpid_; }

  void add_port(PortNo port, std::string name = {});
  bool has_port(PortNo port) const { return ports_.contains(port); }
  SwitchPort* port(PortNo p);
  const SwitchPort* port(PortNo p) const;
  const std::map<PortNo, SwitchPort>& ports() const noexcept { return ports_; }
  std::vector<PortNo> port_numbers() const;

  bool up() const noexcept { return up_; }
  void set_up(bool up) noexcept { up_ = up; }

  FlowTable& table() noexcept { return table_; }
  const FlowTable& table() const noexcept { return table_; }

  of::FeaturesReply features() const;

  /// Handle a southbound control message addressed to this switch.
  /// Replies (stats-reply, barrier-reply, echo-reply, flow-removed on delete,
  /// errors) are appended to `out`. PacketOut is *not* handled here — the
  /// Network intercepts it because forwarding needs topology.
  void handle_message(const of::Message& msg, SimTime now,
                      std::vector<of::Message>& out);

  /// Remove timed-out flow entries, emitting flow-removed messages into `out`
  /// for entries that requested notification.
  void expire_flows(SimTime now, std::vector<of::Message>& out);

  // --- packet buffering for packet-in / packet-out(buffer_id) ---
  std::uint32_t buffer_packet(PortNo in_port, const of::Packet& p);
  std::optional<std::pair<PortNo, of::Packet>> take_buffered(std::uint32_t id);
  std::size_t buffered_count() const noexcept { return buffers_.size(); }

  /// Cold restart: clears flow table, buffers and counters (keeps ports).
  void cold_restart();

private:
  of::StatsReply build_stats(const of::StatsRequest& req, SimTime now) const;

  DatapathId dpid_;
  bool up_ = true;
  std::map<PortNo, SwitchPort> ports_;
  FlowTable table_;
  std::map<std::uint32_t, std::pair<PortNo, of::Packet>> buffers_;
  std::uint32_t next_buffer_id_ = 1;
};

} // namespace legosdn::netsim
