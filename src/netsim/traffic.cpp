#include "netsim/traffic.hpp"

#include <cassert>

namespace legosdn::netsim {

TrafficGenerator::TrafficGenerator(const Network& net, Pattern pattern,
                                   std::uint64_t seed)
    : net_(net), pattern_(pattern), rng_(seed) {
  assert(net_.hosts().size() >= 2 && "traffic needs at least two hosts");
}

Flow TrafficGenerator::next_flow() {
  const auto& hosts = net_.hosts();
  const std::size_t n = hosts.size();
  std::size_t si = 0;
  std::size_t di = 0;
  switch (pattern_) {
    case Pattern::kUniformRandom: {
      si = rng_.below(n);
      do {
        di = rng_.below(n);
      } while (di == si);
      break;
    }
    case Pattern::kStride: {
      si = stride_pos_++ % n;
      di = (si + n / 2) % n;
      if (di == si) di = (si + 1) % n;
      break;
    }
    case Pattern::kIncast: {
      di = 0;
      si = 1 + rng_.below(n - 1);
      break;
    }
    case Pattern::kHotspot: {
      const std::size_t hot = std::max<std::size_t>(1, n / 5);
      di = rng_.chance(0.8) ? rng_.below(hot) : hot + rng_.below(n - hot);
      do {
        si = rng_.below(n);
      } while (si == di);
      break;
    }
  }
  Flow f;
  f.src = hosts[si].mac;
  f.dst = hosts[di].mac;
  f.src_ip = hosts[si].ip;
  f.dst_ip = hosts[di].ip;
  f.tp_src = static_cast<std::uint16_t>(1024 + rng_.below(60000));
  f.tp_dst = 80;
  return f;
}

of::Packet TrafficGenerator::make_packet(const Flow& f, std::uint32_t size_bytes) {
  of::Packet p;
  p.hdr.eth_src = f.src;
  p.hdr.eth_dst = f.dst;
  p.hdr.eth_type = of::kEthTypeIpv4;
  p.hdr.ip_src = f.src_ip;
  p.hdr.ip_dst = f.dst_ip;
  p.hdr.ip_proto = of::kIpProtoTcp;
  p.hdr.tp_src = f.tp_src;
  p.hdr.tp_dst = f.tp_dst;
  p.size_bytes = size_bytes;
  p.trace_tag = next_tag_++;
  return p;
}

std::vector<std::pair<MacAddress, of::Packet>> TrafficGenerator::batch(
    std::size_t n_flows, std::size_t repeats) {
  std::vector<std::pair<MacAddress, of::Packet>> out;
  out.reserve(n_flows * repeats);
  for (std::size_t i = 0; i < n_flows; ++i) {
    const Flow f = next_flow();
    for (std::size_t r = 0; r < repeats; ++r) out.emplace_back(f.src, make_packet(f));
  }
  return out;
}

} // namespace legosdn::netsim
