#include "netsim/flow_table.hpp"

#include <algorithm>
#include <cassert>

#include "common/bytes.hpp"

namespace legosdn::netsim {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Continue an FNV stream with the big-endian bytes of `v`, byte-for-byte
/// equivalent to hashing ByteWriter::u64 output.
std::uint64_t fnv_u64be(std::uint64_t h, std::uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) {
    h ^= (v >> s) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

/// Word-at-a-time mix for hash-table keys (not part of any digest).
std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  return (h ^ v) * kFnvPrime;
}

constexpr std::uint32_t prefix_mask32(std::uint8_t prefix) noexcept {
  return prefix == 0 ? 0u : ~0u << (32 - prefix);
}

std::int64_t seconds_between(SimTime later, SimTime earlier) {
  return (raw(later) - raw(earlier)) / 1'000'000'000;
}

/// FNV over the dynamic (counter/timestamp) suffix of the digest encoding,
/// resumed from the per-entry static midstate.
std::uint64_t dynamic_hash(std::uint64_t static_fnv, const FlowEntry& e) {
  std::uint64_t h = static_fnv;
  h = fnv_u64be(h, e.packet_count);
  h = fnv_u64be(h, e.byte_count);
  h = fnv_u64be(h, static_cast<std::uint64_t>(raw(e.install_time)));
  h = fnv_u64be(h, static_cast<std::uint64_t>(raw(e.last_used)));
  return h;
}

} // namespace

bool match_overlaps(const of::Match& a, const of::Match& b) {
  using of::Wildcard;
  auto fields_disjoint = [&](of::Wildcard f, auto get) {
    if (a.wildcarded(f) || b.wildcarded(f)) return false; // either ignores it
    return get(a) != get(b);
  };
  if (fields_disjoint(of::kWcInPort, [](const of::Match& m) { return m.in_port; }))
    return false;
  if (fields_disjoint(of::kWcEthSrc, [](const of::Match& m) { return m.eth_src; }))
    return false;
  if (fields_disjoint(of::kWcEthDst, [](const of::Match& m) { return m.eth_dst; }))
    return false;
  if (fields_disjoint(of::kWcEthType, [](const of::Match& m) { return m.eth_type; }))
    return false;
  if (fields_disjoint(of::kWcIpProto, [](const of::Match& m) { return m.ip_proto; }))
    return false;
  if (fields_disjoint(of::kWcTpSrc, [](const of::Match& m) { return m.tp_src; }))
    return false;
  if (fields_disjoint(of::kWcTpDst, [](const of::Match& m) { return m.tp_dst; }))
    return false;
  // IP prefixes overlap iff the shorter prefix covers the longer one's net.
  auto prefixes_disjoint = [](bool wa, std::uint32_t na, std::uint8_t pa, bool wb,
                              std::uint32_t nb, std::uint8_t pb) {
    if (wa || wb) return false;
    const std::uint8_t p = std::min(pa, pb);
    const std::uint32_t mask = p == 0 ? 0u : ~0u << (32 - p);
    return (na & mask) != (nb & mask);
  };
  if (prefixes_disjoint(a.wildcarded(of::kWcIpSrc), a.ip_src.addr, a.ip_src_prefix,
                        b.wildcarded(of::kWcIpSrc), b.ip_src.addr, b.ip_src_prefix))
    return false;
  if (prefixes_disjoint(a.wildcarded(of::kWcIpDst), a.ip_dst.addr, a.ip_dst_prefix,
                        b.wildcarded(of::kWcIpDst), b.ip_dst.addr, b.ip_dst_prefix))
    return false;
  return true;
}

bool FlowEntry::outputs_to(PortNo port) const {
  for (const auto& a : actions)
    if (const auto* out = std::get_if<of::ActionOutput>(&a))
      if (out->port == port) return true;
  return false;
}

// --- keys and hashing ------------------------------------------------------

std::size_t FlowTable::StrictKeyHash::operator()(const StrictKey& k) const noexcept {
  const of::Match& m = k.match;
  std::uint64_t h = kFnvOffset;
  h = mix(h, m.wildcards);
  h = mix(h, raw(m.in_port));
  h = mix(h, m.eth_src.to_uint64());
  h = mix(h, m.eth_dst.to_uint64());
  h = mix(h, m.eth_type);
  h = mix(h, m.ip_src.addr);
  h = mix(h, m.ip_dst.addr);
  h = mix(h, (std::uint64_t{m.ip_src_prefix} << 8) | m.ip_dst_prefix);
  h = mix(h, m.ip_proto);
  h = mix(h, (std::uint64_t{m.tp_src} << 16) | m.tp_dst);
  h = mix(h, k.priority);
  return static_cast<std::size_t>(h);
}

std::size_t FlowTable::ExactKeyHash::operator()(const ExactKey& k) const noexcept {
  std::uint64_t h = kFnvOffset;
  h = mix(h, k.in_port);
  h = mix(h, k.eth_src);
  h = mix(h, k.eth_dst);
  h = mix(h, k.eth_type);
  h = mix(h, k.ip_src);
  h = mix(h, k.ip_dst);
  h = mix(h, k.ip_proto);
  h = mix(h, (std::uint64_t{k.tp_src} << 16) | k.tp_dst);
  return static_cast<std::size_t>(h);
}

std::size_t FlowTable::TupleKeyHash::operator()(const TupleKey& k) const noexcept {
  std::uint64_t h = kFnvOffset;
  h = mix(h, k.wildcards);
  h = mix(h, (std::uint64_t{k.src_prefix} << 8) | k.dst_prefix);
  return static_cast<std::size_t>(h);
}

FlowTable::TupleKey FlowTable::tuple_key_of(const of::Match& m) noexcept {
  TupleKey t;
  t.wildcards = m.wildcards & of::kWcAll;
  t.src_prefix = m.wildcarded(of::kWcIpSrc) ? 0 : m.ip_src_prefix;
  t.dst_prefix = m.wildcarded(of::kWcIpDst) ? 0 : m.ip_dst_prefix;
  return t;
}

// Masked keys: zero out every field the tuple ignores and truncate IPs to the
// tuple's prefixes. For entries and headers masked the same way, key equality
// is exactly Match::matches restricted to this tuple — the property the
// per-group hash probe rests on.
FlowTable::ExactKey FlowTable::masked_key_of(const of::Match& m,
                                             const TupleKey& t) noexcept {
  ExactKey k;
  if (!(t.wildcards & of::kWcInPort)) k.in_port = raw(m.in_port);
  if (!(t.wildcards & of::kWcEthSrc)) k.eth_src = m.eth_src.to_uint64();
  if (!(t.wildcards & of::kWcEthDst)) k.eth_dst = m.eth_dst.to_uint64();
  if (!(t.wildcards & of::kWcEthType)) k.eth_type = m.eth_type;
  if (!(t.wildcards & of::kWcIpSrc)) k.ip_src = m.ip_src.addr & prefix_mask32(t.src_prefix);
  if (!(t.wildcards & of::kWcIpDst)) k.ip_dst = m.ip_dst.addr & prefix_mask32(t.dst_prefix);
  if (!(t.wildcards & of::kWcIpProto)) k.ip_proto = m.ip_proto;
  if (!(t.wildcards & of::kWcTpSrc)) k.tp_src = m.tp_src;
  if (!(t.wildcards & of::kWcTpDst)) k.tp_dst = m.tp_dst;
  return k;
}

FlowTable::ExactKey FlowTable::masked_key_of(PortNo in_port, const of::PacketHeader& h,
                                             const TupleKey& t) noexcept {
  ExactKey k;
  if (!(t.wildcards & of::kWcInPort)) k.in_port = raw(in_port);
  if (!(t.wildcards & of::kWcEthSrc)) k.eth_src = h.eth_src.to_uint64();
  if (!(t.wildcards & of::kWcEthDst)) k.eth_dst = h.eth_dst.to_uint64();
  if (!(t.wildcards & of::kWcEthType)) k.eth_type = h.eth_type;
  if (!(t.wildcards & of::kWcIpSrc)) k.ip_src = h.ip_src.addr & prefix_mask32(t.src_prefix);
  if (!(t.wildcards & of::kWcIpDst)) k.ip_dst = h.ip_dst.addr & prefix_mask32(t.dst_prefix);
  if (!(t.wildcards & of::kWcIpProto)) k.ip_proto = h.ip_proto;
  if (!(t.wildcards & of::kWcTpSrc)) k.tp_src = h.tp_src;
  if (!(t.wildcards & of::kWcTpDst)) k.tp_dst = h.tp_dst;
  return k;
}

bool FlowTable::is_exact(const of::Match& m) noexcept {
  // With no wildcard bits and /32 prefixes, Match::matches() degenerates to
  // equality on every field, which is precisely ExactKey equality.
  return m.wildcards == 0 && m.ip_src_prefix == 32 && m.ip_dst_prefix == 32;
}

FlowTable::ExactKey FlowTable::exact_key_of(const of::Match& m) noexcept {
  return {raw(m.in_port),  m.eth_src.to_uint64(), m.eth_dst.to_uint64(),
          m.eth_type,      m.ip_src.addr,         m.ip_dst.addr,
          m.ip_proto,      m.tp_src,              m.tp_dst};
}

FlowTable::ExactKey FlowTable::exact_key_of(PortNo in_port,
                                            const of::PacketHeader& h) noexcept {
  return {raw(in_port), h.eth_src.to_uint64(), h.eth_dst.to_uint64(),
          h.eth_type,   h.ip_src.addr,         h.ip_dst.addr,
          h.ip_proto,   h.tp_src,              h.tp_dst};
}

std::int64_t FlowTable::entry_deadline(const FlowEntry& e) noexcept {
  // Integer-exact restatement of the reference check: for timeout T > 0,
  // seconds_between(now, t) >= T  <=>  raw(now) >= raw(t) + T * 1e9.
  std::int64_t d = kNeverExpires;
  if (e.hard_timeout != 0)
    d = std::min(d, raw(e.install_time) + std::int64_t{e.hard_timeout} * 1'000'000'000);
  if (e.idle_timeout != 0)
    d = std::min(d, raw(e.last_used) + std::int64_t{e.idle_timeout} * 1'000'000'000);
  return d;
}

FlowTable::Meta FlowTable::compute_meta(const FlowEntry& e) {
  Meta m;
  m.exact = is_exact(e.match);
  // Single digest stream, ordered so the logical fields — the ones NetLog
  // inverses restore exactly — form a prefix. One reserved encode pass feeds
  // both hashes: logical_hash is the FNV of the prefix, and static_fnv
  // resumes that midstate over the timeout/flag suffix. Digest values are
  // internal-consistency-only (shadow and live tables run this same code),
  // so the stream layout is free to favour the hot path.
  ByteWriter w(96);
  e.match.encode(w);
  w.u16(e.priority);
  w.u64(e.cookie);
  of::encode_actions(e.actions, w);
  const std::size_t logical_len = w.size();
  m.logical_hash = fnv_bytes(kFnvOffset, w.data().data(), logical_len);
  w.u16(e.idle_timeout);
  w.u16(e.hard_timeout);
  w.u8(e.send_flow_removed ? 1 : 0);
  m.static_fnv =
      fnv_bytes(m.logical_hash, w.data().data() + logical_len, w.size() - logical_len);
  m.full_hash = dynamic_hash(m.static_fnv, e);
  return m;
}

// --- digest and index maintenance ------------------------------------------

void FlowTable::digest_add(const Meta& m) noexcept {
  digest_acc_ ^= m.full_hash;
  logical_acc_ ^= m.logical_hash;
}

void FlowTable::digest_remove(const Meta& m) noexcept {
  digest_acc_ ^= m.full_hash;
  logical_acc_ ^= m.logical_hash;
}

bool FlowTable::beats(std::uint32_t a, std::uint32_t b) const noexcept {
  const FlowEntry& ea = entries_[a];
  const FlowEntry& eb = entries_[b];
  return ea.priority > eb.priority ||
         (ea.priority == eb.priority && ea.seq < eb.seq);
}

void FlowTable::tuple_insert(std::uint32_t pos) {
  const FlowEntry& e = entries_[pos];
  const TupleKey t = tuple_key_of(e.match);
  const auto [it, created] =
      group_of_.try_emplace(t, static_cast<std::uint32_t>(groups_.size()));
  if (created) {
    groups_.push_back(std::make_unique<TupleGroup>());
    groups_.back()->key = t;
    scan_dirty_ = true;
  }
  TupleGroup& g = *groups_[it->second];
  g.buckets[masked_key_of(e.match, t)].push_back(pos);
  if (!created && (g.prio_counts.empty() || e.priority > g.max_priority()))
    scan_dirty_ = true; // group ceiling rose; scan order may change
  g.prio_counts[e.priority] += 1;
}

void FlowTable::tuple_erase(std::uint32_t pos) {
  const FlowEntry& e = entries_[pos];
  const TupleKey t = tuple_key_of(e.match);
  const auto git = group_of_.find(t);
  assert(git != group_of_.end() && "tuple_erase: entry not indexed");
  TupleGroup& g = *groups_[git->second];
  const auto bit = g.buckets.find(masked_key_of(e.match, t));
  assert(bit != g.buckets.end());
  auto& bucket = bit->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), pos));
  if (bucket.empty()) g.buckets.erase(bit);
  const auto pit = g.prio_counts.find(e.priority);
  assert(pit != g.prio_counts.end());
  if (--pit->second == 0) {
    if (pit == g.prio_counts.begin()) scan_dirty_ = true; // ceiling dropped
    g.prio_counts.erase(pit);
  }
  if (g.prio_counts.empty()) {
    // Swap-remove the now-empty group; re-point the moved group's index.
    const std::uint32_t idx = git->second;
    group_of_.erase(git);
    if (idx + 1 != groups_.size()) {
      groups_[idx] = std::move(groups_.back());
      group_of_[groups_[idx]->key] = idx;
    }
    groups_.pop_back();
    scan_dirty_ = true;
  }
}

void FlowTable::ensure_scan_order() const {
  if (!scan_dirty_ && scan_order_.size() == groups_.size()) return;
  scan_order_.clear();
  scan_order_.reserve(groups_.size());
  for (const auto& g : groups_) scan_order_.push_back(g.get());
  std::sort(scan_order_.begin(), scan_order_.end(),
            [](const TupleGroup* a, const TupleGroup* b) {
              return a->max_priority() > b->max_priority();
            });
  scan_dirty_ = false;
}

void FlowTable::arm(std::uint32_t pos) {
  const std::int64_t d = entry_deadline(entries_[pos]);
  meta_[pos].armed_deadline = d;
  if (d == kNeverExpires) return;
  heap_.push_back({d, entries_[pos].seq});
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapRec& a, const HeapRec& b) { return a.deadline > b.deadline; });
}

void FlowTable::refresh_hashes(std::uint32_t pos) {
  digest_remove(meta_[pos]);
  const Meta fresh = compute_meta(entries_[pos]);
  meta_[pos].full_hash = fresh.full_hash;
  meta_[pos].static_fnv = fresh.static_fnv;
  meta_[pos].logical_hash = fresh.logical_hash;
  digest_add(meta_[pos]);
}

void FlowTable::append(FlowEntry entry) {
  const auto pos = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(std::move(entry));
  meta_.push_back(compute_meta(entries_[pos]));
  digest_add(meta_[pos]);
  const FlowEntry& e = entries_[pos];
  strict_.emplace(StrictKey{e.match, e.priority}, pos);
  if (meta_[pos].exact)
    exact_[exact_key_of(e.match)].push_back(pos);
  else
    tuple_insert(pos);
  pos_by_seq_.emplace(e.seq, pos);
  arm(pos);
}

void FlowTable::replace_at(std::uint32_t pos, FlowEntry entry) {
  // Identity (match+priority) is unchanged, so strict_ and the exact bucket
  // keep pointing at `pos`; the tuple bucket does too, but erase/re-insert
  // anyway — it is O(1) and keeps the group priority histogram exact.
  digest_remove(meta_[pos]);
  pos_by_seq_.erase(entries_[pos].seq);
  const bool was_wild = !meta_[pos].exact;
  if (was_wild) tuple_erase(pos);
  entries_[pos] = std::move(entry);
  meta_[pos] = compute_meta(entries_[pos]);
  digest_add(meta_[pos]);
  pos_by_seq_.emplace(entries_[pos].seq, pos);
  if (!meta_[pos].exact) tuple_insert(pos);
  arm(pos);
}

void FlowTable::remove_positions(const std::vector<std::uint32_t>& positions) {
  // Precondition: sorted ascending. The compaction below advances `skip`
  // only while positions[skip] equals the read cursor, so an out-of-order
  // (or duplicated) list would silently skip nothing and corrupt the table.
#ifndef NDEBUG
  for (std::size_t i = 1; i < positions.size(); ++i)
    assert(positions[i - 1] < positions[i] &&
           "remove_positions: positions must be sorted ascending and unique");
#endif
  for (const std::uint32_t pos : positions) digest_remove(meta_[pos]);
  std::size_t w = 0, skip = 0;
  for (std::size_t r = 0; r < entries_.size(); ++r) {
    if (skip < positions.size() && positions[skip] == r) {
      ++skip;
      continue;
    }
    if (w != r) {
      entries_[w] = std::move(entries_[r]);
      meta_[w] = meta_[r];
    }
    ++w;
  }
  entries_.resize(w);
  meta_.resize(w);
  reindex();
  // Heap records for removed/relocated entries go stale; pops validate
  // against pos_by_seq_ + armed_deadline, so no eager cleanup is needed.
}

void FlowTable::reindex() {
  strict_.clear();
  exact_.clear();
  groups_.clear();
  group_of_.clear();
  scan_order_.clear();
  scan_dirty_ = true;
  pos_by_seq_.clear();
  for (std::uint32_t pos = 0; pos < entries_.size(); ++pos) {
    const FlowEntry& e = entries_[pos];
    strict_.emplace(StrictKey{e.match, e.priority}, pos);
    if (meta_[pos].exact)
      exact_[exact_key_of(e.match)].push_back(pos);
    else
      tuple_insert(pos);
    pos_by_seq_.emplace(e.seq, pos);
  }
}

void FlowTable::rebuild_all() {
  digest_acc_ = 0x12345678ABCDEF01ULL;
  logical_acc_ = 0;
  heap_.clear();
  meta_.resize(entries_.size());
  for (std::uint32_t pos = 0; pos < entries_.size(); ++pos) {
    meta_[pos] = compute_meta(entries_[pos]);
    digest_add(meta_[pos]);
  }
  reindex();
  for (std::uint32_t pos = 0; pos < entries_.size(); ++pos) arm(pos);
}

void FlowTable::clear() noexcept {
  entries_.clear();
  meta_.clear();
  strict_.clear();
  exact_.clear();
  groups_.clear();
  group_of_.clear();
  scan_order_.clear();
  scan_dirty_ = false;
  pos_by_seq_.clear();
  heap_.clear();
  digest_acc_ = 0x12345678ABCDEF01ULL;
  logical_acc_ = 0;
}

void FlowTable::restore_snapshot(std::vector<FlowEntry> snap) {
  entries_ = std::move(snap);
  for (const FlowEntry& e : entries_)
    next_seq_ = std::max(next_seq_, e.seq + 1);
  rebuild_all();
}

// --- flow-mod application ---------------------------------------------------

FlowModResult FlowTable::apply(const of::FlowMod& mod, SimTime now) {
  FlowModResult res;
  switch (mod.command) {
    case of::FlowModCommand::kAdd: {
      if (mod.check_overlap) {
        for (const auto& e : entries_) {
          if (e.priority == mod.priority && match_overlaps(e.match, mod.match) &&
              !e.same_flow(mod.match, mod.priority)) {
            res.ok = false;
            res.error = "overlap";
            return res;
          }
        }
      }
      // Replace an identical flow if present (counters reset per OF 1.0).
      FlowEntry entry;
      entry.match = mod.match;
      entry.priority = mod.priority;
      entry.cookie = mod.cookie;
      entry.idle_timeout = mod.idle_timeout;
      entry.hard_timeout = mod.hard_timeout;
      entry.send_flow_removed = mod.send_flow_removed;
      entry.actions = mod.actions;
      entry.install_time = now;
      entry.last_used = now;
      entry.seq = next_seq_++;
      res.added.push_back(entry);
      auto sit = strict_.find(StrictKey{mod.match, mod.priority});
      if (sit != strict_.end()) {
        res.removed.push_back(entries_[sit->second]);
        replace_at(sit->second, std::move(entry));
      } else {
        append(std::move(entry));
      }
      return res;
    }
    case of::FlowModCommand::kModify:
    case of::FlowModCommand::kModifyStrict: {
      const bool strict = mod.command == of::FlowModCommand::kModifyStrict;
      bool any = false;
      if (strict) {
        auto sit = strict_.find(StrictKey{mod.match, mod.priority});
        if (sit != strict_.end()) {
          FlowEntry& e = entries_[sit->second];
          res.modified.push_back(e); // before-image
          e.actions = mod.actions;   // modify updates actions, preserves counters
          e.cookie = mod.cookie;
          refresh_hashes(sit->second);
          any = true;
        }
      } else {
        for (std::uint32_t pos = 0; pos < entries_.size(); ++pos) {
          FlowEntry& e = entries_[pos];
          if (!mod.match.subsumes(e.match)) continue;
          res.modified.push_back(e);
          e.actions = mod.actions;
          e.cookie = mod.cookie;
          refresh_hashes(pos);
          any = true;
        }
      }
      if (!any) {
        // OF 1.0: modify with no match behaves as an add.
        of::FlowMod add = mod;
        add.command = of::FlowModCommand::kAdd;
        return apply(add, now);
      }
      return res;
    }
    case of::FlowModCommand::kDelete:
    case of::FlowModCommand::kDeleteStrict: {
      const bool strict = mod.command == of::FlowModCommand::kDeleteStrict;
      std::vector<std::uint32_t> doomed;
      if (strict) {
        auto sit = strict_.find(StrictKey{mod.match, mod.priority});
        if (sit != strict_.end()) {
          const FlowEntry& e = entries_[sit->second];
          if (mod.out_port == ports::kNone || e.outputs_to(mod.out_port))
            doomed.push_back(sit->second);
        }
      } else {
        for (std::uint32_t pos = 0; pos < entries_.size(); ++pos) {
          const FlowEntry& e = entries_[pos];
          if (!mod.match.subsumes(e.match)) continue;
          if (mod.out_port != ports::kNone && !e.outputs_to(mod.out_port)) continue;
          doomed.push_back(pos);
        }
      }
      if (!doomed.empty()) {
        for (const std::uint32_t pos : doomed) res.removed.push_back(entries_[pos]);
        remove_positions(doomed);
      }
      return res;
    }
  }
  res.ok = false;
  res.error = "bad command";
  return res;
}

// --- lookup -----------------------------------------------------------------

std::uint32_t FlowTable::lookup_pos(PortNo in_port, const of::PacketHeader& hdr) const {
  std::uint32_t best = kNpos;
  if (!exact_.empty()) {
    auto it = exact_.find(exact_key_of(in_port, hdr));
    if (it != exact_.end()) {
      for (const std::uint32_t pos : it->second)
        if (best == kNpos || beats(pos, best)) best = pos;
    }
  }
  // Tuple-space search over the wildcard tier: one hash probe per tuple
  // group, groups visited in descending max-priority order. Once a group's
  // ceiling is strictly below the current best's priority, no later group
  // can win either (equal-priority ceilings must still be probed — a member
  // could break the tie on insertion order via beats()).
  if (!groups_.empty()) {
    ensure_scan_order();
    for (const TupleGroup* g : scan_order_) {
      if (best != kNpos && g->max_priority() < entries_[best].priority) break;
      const auto bit = g->buckets.find(masked_key_of(in_port, hdr, g->key));
      if (bit == g->buckets.end()) continue;
      for (const std::uint32_t pos : bit->second)
        if (best == kNpos || beats(pos, best)) best = pos;
    }
  }
  return best;
}

const FlowEntry* FlowTable::match_packet(PortNo in_port, const of::PacketHeader& hdr,
                                         std::uint32_t bytes, SimTime now) {
  const std::uint32_t pos = lookup_pos(in_port, hdr);
  if (pos == kNpos) return nullptr;
  FlowEntry& e = entries_[pos];
  Meta& m = meta_[pos];
  // Counter touch: swap this entry's digest term, resuming the FNV stream
  // from the cached static midstate so no re-encode happens.
  digest_acc_ ^= m.full_hash;
  e.packet_count += 1;
  e.byte_count += bytes;
  e.last_used = now; // extends any idle deadline; expire() re-arms lazily
  m.full_hash = dynamic_hash(m.static_fnv, e);
  digest_acc_ ^= m.full_hash;
  return &e;
}

const FlowEntry* FlowTable::peek(PortNo in_port, const of::PacketHeader& hdr) const {
  const std::uint32_t pos = lookup_pos(in_port, hdr);
  return pos == kNpos ? nullptr : &entries_[pos];
}

// --- expiry -----------------------------------------------------------------

std::vector<FlowTable::Expired> FlowTable::expire(SimTime now) {
  std::vector<Expired> out;
  auto heap_min = [](const HeapRec& a, const HeapRec& b) { return a.deadline > b.deadline; };
  std::vector<std::uint32_t> due;
  while (!heap_.empty() && heap_.front().deadline <= raw(now)) {
    const HeapRec rec = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), heap_min);
    heap_.pop_back();
    const auto it = pos_by_seq_.find(rec.seq);
    if (it == pos_by_seq_.end()) continue; // stale: entry is gone
    const std::uint32_t pos = it->second;
    if (meta_[pos].armed_deadline != rec.deadline) continue; // stale: re-armed
    const std::int64_t actual = entry_deadline(entries_[pos]);
    if (actual <= raw(now)) {
      meta_[pos].armed_deadline = kNeverExpires; // leaving the table
      due.push_back(pos);
    } else {
      // Idle clock was refreshed by traffic since arming; push the real
      // deadline back into the heap.
      meta_[pos].armed_deadline = actual;
      heap_.push_back({actual, entries_[pos].seq});
      std::push_heap(heap_.begin(), heap_.end(), heap_min);
    }
  }
  if (due.empty()) return out;
  // Report in table order, with the hard timeout taking precedence over the
  // idle one when both have lapsed — exactly like the reference scan.
  std::sort(due.begin(), due.end());
  for (const std::uint32_t pos : due) {
    const FlowEntry& e = entries_[pos];
    const bool hard =
        e.hard_timeout != 0 && seconds_between(now, e.install_time) >= e.hard_timeout;
    out.push_back({e, hard ? of::FlowRemovedReason::kHardTimeout
                           : of::FlowRemovedReason::kIdleTimeout});
  }
  remove_positions(due);
  return out;
}

// --- restore / strict lookup ------------------------------------------------

void FlowTable::restore(const FlowEntry& entry) {
  // Keep seq allocation ahead of anything restored from a snapshot so
  // insertion-order tie-breaks can never collide with a future add.
  next_seq_ = std::max(next_seq_, entry.seq + 1);
  auto sit = strict_.find(StrictKey{entry.match, entry.priority});
  if (sit != strict_.end()) {
    replace_at(sit->second, entry);
  } else {
    append(entry);
  }
}

const FlowEntry* FlowTable::find_strict(const of::Match& m,
                                        std::uint16_t priority) const {
  auto sit = strict_.find(StrictKey{m, priority});
  return sit == strict_.end() ? nullptr : &entries_[sit->second];
}

} // namespace legosdn::netsim
