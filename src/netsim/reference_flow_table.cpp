#include "netsim/reference_flow_table.hpp"

#include <algorithm>

#include "common/bytes.hpp"

namespace legosdn::netsim {
namespace {

std::int64_t seconds_between(SimTime later, SimTime earlier) {
  return (raw(later) - raw(earlier)) / 1'000'000'000;
}

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fnv(const ByteWriter& w) {
  std::uint64_t h = kFnvOffset;
  for (auto b : w.data()) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

} // namespace

FlowModResult ReferenceFlowTable::apply(const of::FlowMod& mod, SimTime now) {
  FlowModResult res;
  switch (mod.command) {
    case of::FlowModCommand::kAdd: {
      if (mod.check_overlap) {
        for (const auto& e : entries_) {
          if (e.priority == mod.priority && match_overlaps(e.match, mod.match) &&
              !e.same_flow(mod.match, mod.priority)) {
            res.ok = false;
            res.error = "overlap";
            return res;
          }
        }
      }
      // Replace an identical flow if present (counters reset per OF 1.0).
      auto it = std::find_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
        return e.same_flow(mod.match, mod.priority);
      });
      FlowEntry entry;
      entry.match = mod.match;
      entry.priority = mod.priority;
      entry.cookie = mod.cookie;
      entry.idle_timeout = mod.idle_timeout;
      entry.hard_timeout = mod.hard_timeout;
      entry.send_flow_removed = mod.send_flow_removed;
      entry.actions = mod.actions;
      entry.install_time = now;
      entry.last_used = now;
      entry.seq = next_seq_++;
      if (it != entries_.end()) {
        res.removed.push_back(*it);
        *it = entry;
      } else {
        entries_.push_back(entry);
      }
      res.added.push_back(entry);
      return res;
    }
    case of::FlowModCommand::kModify:
    case of::FlowModCommand::kModifyStrict: {
      const bool strict = mod.command == of::FlowModCommand::kModifyStrict;
      bool any = false;
      for (auto& e : entries_) {
        const bool hit = strict ? e.same_flow(mod.match, mod.priority)
                                : mod.match.subsumes(e.match);
        if (!hit) continue;
        res.modified.push_back(e); // before-image
        e.actions = mod.actions;   // modify updates actions, preserves counters
        e.cookie = mod.cookie;
        any = true;
      }
      if (!any) {
        // OF 1.0: modify with no match behaves as an add.
        of::FlowMod add = mod;
        add.command = of::FlowModCommand::kAdd;
        return apply(add, now);
      }
      return res;
    }
    case of::FlowModCommand::kDelete:
    case of::FlowModCommand::kDeleteStrict: {
      const bool strict = mod.command == of::FlowModCommand::kDeleteStrict;
      auto it = entries_.begin();
      while (it != entries_.end()) {
        const bool hit = strict ? it->same_flow(mod.match, mod.priority)
                                : mod.match.subsumes(it->match);
        const bool port_ok =
            mod.out_port == ports::kNone || it->outputs_to(mod.out_port);
        if (hit && port_ok) {
          res.removed.push_back(*it);
          it = entries_.erase(it);
        } else {
          ++it;
        }
      }
      return res;
    }
  }
  res.ok = false;
  res.error = "bad command";
  return res;
}

const FlowEntry* ReferenceFlowTable::match_packet(PortNo in_port,
                                                  const of::PacketHeader& hdr,
                                                  std::uint32_t bytes, SimTime now) {
  FlowEntry* best = nullptr;
  for (auto& e : entries_) {
    if (!e.match.matches(in_port, hdr)) continue;
    if (!best || e.priority > best->priority ||
        (e.priority == best->priority && e.seq < best->seq)) {
      best = &e;
    }
  }
  if (best) {
    best->packet_count += 1;
    best->byte_count += bytes;
    best->last_used = now;
  }
  return best;
}

const FlowEntry* ReferenceFlowTable::peek(PortNo in_port,
                                          const of::PacketHeader& hdr) const {
  const FlowEntry* best = nullptr;
  for (const auto& e : entries_) {
    if (!e.match.matches(in_port, hdr)) continue;
    if (!best || e.priority > best->priority ||
        (e.priority == best->priority && e.seq < best->seq)) {
      best = &e;
    }
  }
  return best;
}

std::vector<ReferenceFlowTable::Expired> ReferenceFlowTable::expire(SimTime now) {
  std::vector<Expired> out;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    of::FlowRemovedReason reason{};
    bool dead = false;
    if (it->hard_timeout != 0 &&
        seconds_between(now, it->install_time) >= it->hard_timeout) {
      dead = true;
      reason = of::FlowRemovedReason::kHardTimeout;
    } else if (it->idle_timeout != 0 &&
               seconds_between(now, it->last_used) >= it->idle_timeout) {
      dead = true;
      reason = of::FlowRemovedReason::kIdleTimeout;
    }
    if (dead) {
      out.push_back({*it, reason});
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

void ReferenceFlowTable::restore(const FlowEntry& entry) {
  next_seq_ = std::max(next_seq_, entry.seq + 1);
  auto it = std::find_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
    return e.same_flow(entry.match, entry.priority);
  });
  if (it != entries_.end()) {
    *it = entry;
  } else {
    entries_.push_back(entry);
  }
}

void ReferenceFlowTable::restore_snapshot(std::vector<FlowEntry> snap) {
  entries_ = std::move(snap);
  for (const FlowEntry& e : entries_)
    next_seq_ = std::max(next_seq_, e.seq + 1);
}

const FlowEntry* ReferenceFlowTable::find_strict(const of::Match& m,
                                                 std::uint16_t priority) const {
  for (const auto& e : entries_)
    if (e.same_flow(m, priority)) return &e;
  return nullptr;
}

std::uint64_t ReferenceFlowTable::digest() const {
  // Order-insensitive digest: XOR of per-entry FNV hashes over the logical
  // state (seq excluded; it is table-internal bookkeeping).
  std::uint64_t acc = 0x12345678ABCDEF01ULL;
  for (const auto& e : entries_) {
    // Same stream layout as FlowTable::compute_meta: the logical fields
    // (match, priority, cookie, actions) form a prefix so the indexed table
    // can derive logical/static/full digests from one encode pass.
    ByteWriter w;
    e.match.encode(w);
    w.u16(e.priority);
    w.u64(e.cookie);
    of::encode_actions(e.actions, w);
    w.u16(e.idle_timeout);
    w.u16(e.hard_timeout);
    w.u8(e.send_flow_removed ? 1 : 0);
    w.u64(e.packet_count);
    w.u64(e.byte_count);
    w.u64(static_cast<std::uint64_t>(raw(e.install_time)));
    w.u64(static_cast<std::uint64_t>(raw(e.last_used)));
    acc ^= fnv(w);
  }
  return acc;
}

std::uint64_t ReferenceFlowTable::logical_digest() const {
  std::uint64_t acc = 0;
  for (const auto& e : entries_) {
    ByteWriter w;
    e.match.encode(w);
    w.u16(e.priority);
    w.u64(e.cookie);
    of::encode_actions(e.actions, w);
    acc ^= fnv(w);
  }
  return acc;
}

} // namespace legosdn::netsim
