#include "netsim/switch.hpp"

#include <algorithm>

namespace legosdn::netsim {

void SimSwitch::add_port(PortNo port, std::string name) {
  SwitchPort p;
  p.desc.port = port;
  p.desc.hw_addr =
      MacAddress::from_uint64((raw(dpid_) << 16) | raw(port) | 0x020000000000ULL);
  p.desc.name = name.empty()
                    ? "s" + std::to_string(raw(dpid_)) + "-eth" + std::to_string(raw(port))
                    : std::move(name);
  p.desc.link_up = true;
  ports_[port] = std::move(p);
}

SwitchPort* SimSwitch::port(PortNo p) {
  auto it = ports_.find(p);
  return it == ports_.end() ? nullptr : &it->second;
}

const SwitchPort* SimSwitch::port(PortNo p) const {
  auto it = ports_.find(p);
  return it == ports_.end() ? nullptr : &it->second;
}

std::vector<PortNo> SimSwitch::port_numbers() const {
  std::vector<PortNo> out;
  out.reserve(ports_.size());
  for (const auto& [no, _] : ports_) out.push_back(no);
  return out;
}

of::FeaturesReply SimSwitch::features() const {
  of::FeaturesReply f;
  f.dpid = dpid_;
  for (const auto& [_, p] : ports_) f.ports.push_back(p.desc);
  return f;
}

void SimSwitch::handle_message(const of::Message& msg, SimTime now,
                               std::vector<of::Message>& out) {
  if (!up_) return; // a dead switch answers nothing
  if (const auto* mod = msg.get_if<of::FlowMod>()) {
    auto res = table_.apply(*mod, now);
    if (!res.ok) {
      out.push_back({msg.xid, of::OfError{dpid_, of::OfErrorType::kFlowModFailed, 0,
                                          res.error}});
      return;
    }
    // Deleted entries that asked for notification emit flow-removed.
    for (const auto& e : res.removed) {
      if (!e.send_flow_removed) continue;
      if (mod->command != of::FlowModCommand::kDelete &&
          mod->command != of::FlowModCommand::kDeleteStrict)
        continue; // replacement by ADD does not notify in OF 1.0
      of::FlowRemoved fr;
      fr.dpid = dpid_;
      fr.match = e.match;
      fr.cookie = e.cookie;
      fr.priority = e.priority;
      fr.reason = of::FlowRemovedReason::kDelete;
      fr.duration_sec =
          static_cast<std::uint32_t>((raw(now) - raw(e.install_time)) / 1'000'000'000);
      fr.idle_timeout = e.idle_timeout;
      fr.packet_count = e.packet_count;
      fr.byte_count = e.byte_count;
      out.push_back({msg.xid, fr});
    }
    return;
  }
  if (const auto* echo = msg.get_if<of::EchoRequest>()) {
    out.push_back({msg.xid, of::EchoReply{echo->payload}});
    return;
  }
  if (msg.is<of::FeaturesRequest>()) {
    out.push_back({msg.xid, features()});
    return;
  }
  if (const auto* req = msg.get_if<of::StatsRequest>()) {
    out.push_back({msg.xid, build_stats(*req, now)});
    return;
  }
  if (msg.is<of::BarrierRequest>()) {
    out.push_back({msg.xid, of::BarrierReply{dpid_}});
    return;
  }
  if (msg.is<of::Hello>()) {
    out.push_back({msg.xid, of::Hello{}});
    return;
  }
  // Anything else addressed at a switch is a protocol error.
  out.push_back({msg.xid, of::OfError{dpid_, of::OfErrorType::kBadRequest, 0,
                                      "unhandled " + of::type_name(msg.body)}});
}

of::StatsReply SimSwitch::build_stats(const of::StatsRequest& req, SimTime now) const {
  of::StatsReply rep;
  rep.dpid = dpid_;
  rep.kind = req.kind;
  switch (req.kind) {
    case of::StatsKind::kFlow: {
      for (const auto& e : table_.entries()) {
        if (!req.match.subsumes(e.match)) continue;
        of::FlowStatsEntry f;
        f.match = e.match;
        f.cookie = e.cookie;
        f.priority = e.priority;
        f.duration_sec = static_cast<std::uint32_t>((raw(now) - raw(e.install_time)) /
                                                    1'000'000'000);
        f.idle_timeout = e.idle_timeout;
        f.hard_timeout = e.hard_timeout;
        f.packet_count = e.packet_count;
        f.byte_count = e.byte_count;
        f.actions = e.actions;
        rep.flows.push_back(std::move(f));
      }
      break;
    }
    case of::StatsKind::kPort: {
      for (const auto& [no, p] : ports_) {
        if (req.port != ports::kNone && req.port != no) continue;
        rep.ports.push_back({no, p.rx_packets, p.tx_packets, p.rx_bytes, p.tx_bytes,
                             p.drops});
      }
      break;
    }
    case of::StatsKind::kAggregate: {
      for (const auto& e : table_.entries()) {
        if (!req.match.subsumes(e.match)) continue;
        rep.aggregate.packet_count += e.packet_count;
        rep.aggregate.byte_count += e.byte_count;
        rep.aggregate.flow_count += 1;
      }
      break;
    }
  }
  return rep;
}

void SimSwitch::expire_flows(SimTime now, std::vector<of::Message>& out) {
  if (!up_) return;
  // Network::advance_time calls this on every switch at every tick; the O(1)
  // deadline-heap peek keeps the common nothing-due case scan-free.
  if (!table_.has_pending_expiry(now)) return;
  for (const auto& ex : table_.expire(now)) {
    if (!ex.entry.send_flow_removed) continue;
    of::FlowRemoved fr;
    fr.dpid = dpid_;
    fr.match = ex.entry.match;
    fr.cookie = ex.entry.cookie;
    fr.priority = ex.entry.priority;
    fr.reason = ex.reason;
    fr.duration_sec = static_cast<std::uint32_t>(
        (raw(now) - raw(ex.entry.install_time)) / 1'000'000'000);
    fr.idle_timeout = ex.entry.idle_timeout;
    fr.packet_count = ex.entry.packet_count;
    fr.byte_count = ex.entry.byte_count;
    out.push_back({0, fr});
  }
}

std::uint32_t SimSwitch::buffer_packet(PortNo in_port, const of::Packet& p) {
  // Bounded buffer pool, as on a real switch: oldest entry evicted when full.
  constexpr std::size_t kMaxBuffers = 256;
  if (buffers_.size() >= kMaxBuffers) buffers_.erase(buffers_.begin());
  const std::uint32_t id = next_buffer_id_++;
  buffers_[id] = {in_port, p};
  return id;
}

std::optional<std::pair<PortNo, of::Packet>> SimSwitch::take_buffered(std::uint32_t id) {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) return std::nullopt;
  auto out = std::move(it->second);
  buffers_.erase(it);
  return out;
}

void SimSwitch::cold_restart() {
  table_.clear();
  buffers_.clear();
  next_buffer_id_ = 1;
  for (auto& [_, p] : ports_) {
    p.rx_packets = p.tx_packets = p.rx_bytes = p.tx_bytes = p.drops = 0;
  }
}

} // namespace legosdn::netsim
