// The pre-index flat-vector FlowTable, kept verbatim as a differential-testing
// oracle. Every operation is a linear scan, which makes the OF 1.0 semantics
// (priority ties by insertion order, MODIFY/DELETE cover semantics, counter
// touch on lookup, timeout precedence) easy to audit by eye. The indexed
// FlowTable must be behaviorally indistinguishable from this class — including
// digests — and tests/flow_table_diff_test.cpp drives both in lock-step to
// prove it. Do not optimise this code; its simplicity is the point.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/flow_table.hpp"

namespace legosdn::netsim {

class ReferenceFlowTable {
public:
  using Expired = FlowTable::Expired;

  FlowModResult apply(const of::FlowMod& mod, SimTime now);

  const FlowEntry* match_packet(PortNo in_port, const of::PacketHeader& hdr,
                                std::uint32_t bytes, SimTime now);

  const FlowEntry* peek(PortNo in_port, const of::PacketHeader& hdr) const;

  std::vector<Expired> expire(SimTime now);

  void restore(const FlowEntry& entry);

  const FlowEntry* find_strict(const of::Match& m, std::uint16_t priority) const;

  const std::vector<FlowEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

  std::vector<FlowEntry> snapshot() const { return entries_; }
  void restore_snapshot(std::vector<FlowEntry> snap);

  /// Full re-encode digest; the value the indexed table maintains
  /// incrementally must equal this exactly.
  std::uint64_t digest() const;

  /// Full re-encode structure-only digest (match, priority, cookie, actions);
  /// the oracle for FlowTable::logical_digest().
  std::uint64_t logical_digest() const;

private:
  std::vector<FlowEntry> entries_;
  std::uint64_t next_seq_ = 0;
};

} // namespace legosdn::netsim
