// Deterministic workload generators: streams of packets between hosts.
//
// Patterns follow the workloads SDN papers evaluate with: uniform random
// pairs, fixed permutations (stride), many-to-one (incast toward a server),
// and repeating flows (to exercise installed rules rather than punts).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "netsim/network.hpp"

namespace legosdn::netsim {

struct Flow {
  MacAddress src{};
  MacAddress dst{};
  IpV4 src_ip{};
  IpV4 dst_ip{};
  std::uint16_t tp_src = 0;
  std::uint16_t tp_dst = 0;
};

class TrafficGenerator {
public:
  enum class Pattern {
    kUniformRandom, ///< src,dst drawn uniformly from distinct hosts
    kStride,        ///< host i talks to host (i + stride) mod n
    kIncast,        ///< everyone talks to host 0
    kHotspot,       ///< 80% of traffic targets 20% of hosts
  };

  TrafficGenerator(const Network& net, Pattern pattern, std::uint64_t seed);

  /// Pick the next (src, dst) flow according to the pattern.
  Flow next_flow();

  /// Build a packet for a flow (optionally a later packet of the same flow,
  /// which matters for hit-vs-miss behavior at switches).
  of::Packet make_packet(const Flow& f, std::uint32_t size_bytes = 512);

  /// Generate a batch of `n` packets, `repeats` packets per flow.
  std::vector<std::pair<MacAddress, of::Packet>> batch(std::size_t n_flows,
                                                       std::size_t repeats = 1);

private:
  const Network& net_;
  Pattern pattern_;
  Rng rng_;
  std::size_t stride_pos_ = 0;
  std::uint64_t next_tag_ = 1;
};

} // namespace legosdn::netsim
