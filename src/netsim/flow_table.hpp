// Switch flow table with OpenFlow 1.0 semantics.
//
// This is the state machine whose invertibility NetLog depends on, so the
// semantics are implemented carefully:
//  - lookup returns the highest-priority matching entry (ties broken by
//    insertion order, deterministically);
//  - ADD replaces an entry with identical match+priority (resetting counters);
//  - MODIFY / DELETE apply to all entries *covered by* the given match,
//    the STRICT variants only to the entry with identical match+priority;
//  - DELETE honours the out_port filter;
//  - idle and hard timeouts expire entries and emit flow-removed records.
//
// Internally the table is a two-tier classifier (see DESIGN.md §4.3):
//  - the *exact tier* holds fully-specified entries (no wildcard bits, /32
//    prefixes) in a hash index, so the common learning-switch workload gets
//    O(1) lookups;
//  - the *wildcard tier* is a tuple-space search: entries are grouped by
//    their mask tuple (wildcard bits + effective IP prefix lengths) and
//    hashed on their masked field values within each group, so a lookup is
//    one hash probe per tuple group — scanned in descending max-priority
//    order with early exit — instead of a scan over every wildcard rule.
// A strict-identity hash index makes find_strict / restore / ADD-replace
// O(1), a lazy min-heap over expiry deadlines makes expire() O(1) when
// nothing is due, and the state digest is maintained incrementally (XOR-fold
// updated on add/remove/counter-touch) instead of re-encoding the table.
//
// Observable behavior is byte-identical to the pre-index flat-vector code,
// which survives as ReferenceFlowTable (reference_flow_table.hpp) — the
// oracle for the differential property test (tests/flow_table_diff_test.cpp).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "openflow/messages.hpp"

namespace legosdn::netsim {

struct FlowEntry {
  of::Match match{};
  std::uint16_t priority = 0x8000;
  std::uint64_t cookie = 0;
  std::uint16_t idle_timeout = 0; ///< seconds; 0 = never
  std::uint16_t hard_timeout = 0; ///< seconds; 0 = never
  bool send_flow_removed = false;
  of::ActionList actions;

  // Mutable runtime state.
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  SimTime install_time{kSimStart};
  SimTime last_used{kSimStart};
  std::uint64_t seq = 0; ///< insertion order, assigned by the table

  bool operator==(const FlowEntry&) const = default;

  /// Same identity in the flow table (strict match semantics).
  bool same_flow(const of::Match& m, std::uint16_t prio) const {
    return priority == prio && match == m;
  }

  bool outputs_to(PortNo port) const;
};

/// Outcome of applying a FlowMod; before-images feed NetLog's undo log.
struct FlowModResult {
  bool ok = true;
  std::string error;                 ///< set when !ok (e.g. overlap check)
  std::vector<FlowEntry> added;      ///< entries newly installed
  std::vector<FlowEntry> removed;    ///< full before-images of removed entries
  std::vector<FlowEntry> modified;   ///< before-images of modified entries
};

/// Do two matches overlap (can a single packet match both)? Shared by the
/// indexed table and the reference oracle so ADD+check_overlap agrees.
bool match_overlaps(const of::Match& a, const of::Match& b);

class FlowTable {
public:
  /// Apply a flow-mod at virtual time `now`.
  FlowModResult apply(const of::FlowMod& mod, SimTime now);

  /// Dataplane lookup. Updates counters of the hit entry.
  /// Returns nullptr on table miss.
  const FlowEntry* match_packet(PortNo in_port, const of::PacketHeader& hdr,
                                std::uint32_t bytes, SimTime now);

  /// Lookup without touching counters (used by the invariant checker).
  const FlowEntry* peek(PortNo in_port, const of::PacketHeader& hdr) const;

  /// Remove timed-out entries; returns their before-images together with the
  /// expiry reason so the switch can emit flow-removed messages.
  struct Expired {
    FlowEntry entry;
    of::FlowRemovedReason reason;
  };
  std::vector<Expired> expire(SimTime now);

  /// O(1) check whether expire(now) could remove anything; lets callers on
  /// the time-advance path skip the call entirely. May report true for
  /// entries whose idle clock was refreshed since their deadline was armed
  /// (expire() then just re-arms them), never false for a genuinely due one.
  bool has_pending_expiry(SimTime now) const noexcept {
    return !heap_.empty() && heap_.front().deadline <= raw(now);
  }

  /// Sentinel returned by earliest_deadline() when no entry has a timeout.
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  /// Earliest armed expiry deadline (raw nanoseconds), or kNoDeadline.
  /// Conservative the same way has_pending_expiry is: it may report an
  /// already-refreshed idle deadline (expire() then just re-arms), never a
  /// deadline later than the genuine earliest one. Lets Network keep a
  /// cross-switch expiry heap so idle ticks are O(1) network-wide.
  std::int64_t earliest_deadline() const noexcept {
    return heap_.empty() ? kNoDeadline : heap_.front().deadline;
  }

  /// Reinstall an entry preserving all runtime state (counters, timestamps).
  /// Used by NetLog rollback; replaces any entry with the same match+priority.
  void restore(const FlowEntry& entry);

  /// Find the entry with identical match+priority.
  const FlowEntry* find_strict(const of::Match& m, std::uint16_t priority) const;

  const std::vector<FlowEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept;

  /// Full-state snapshot/restore; equality of snapshots defines "identical
  /// network state" in the rollback property tests.
  std::vector<FlowEntry> snapshot() const { return entries_; }
  void restore_snapshot(std::vector<FlowEntry> snap);

  /// Deterministic state digest (order-insensitive) for fast comparison.
  /// Maintained incrementally; equals the reference full re-encode exactly.
  std::uint64_t digest() const noexcept { return digest_acc_; }

  /// Structure-only digest over (match, priority, cookie, actions) — the
  /// fields NetLog's inverses restore exactly. Unlike digest() it ignores
  /// counters, timestamps and timeouts, so it is stable across rollback
  /// (inverse ADDs carry *remaining* timeouts and fresh install times) and
  /// suits cheap pre/post-transaction comparison. Also O(1).
  std::uint64_t logical_digest() const noexcept { return logical_acc_; }

private:
  static constexpr std::int64_t kNeverExpires = kNoDeadline;
  static constexpr std::uint32_t kNpos = 0xFFFFFFFFu;

  /// Per-entry bookkeeping, parallel to entries_.
  struct Meta {
    std::uint64_t full_hash = 0;    ///< per-entry term of digest()
    std::uint64_t static_fnv = 0;   ///< FNV midstate after the static fields
    std::uint64_t logical_hash = 0; ///< per-entry term of logical_digest()
    std::int64_t armed_deadline = kNeverExpires; ///< deadline in the heap
    bool exact = false;             ///< exact tier (vs wildcard tier)
  };

  /// Lazy min-heap record; validated against Meta::armed_deadline on pop so
  /// stale records (entry removed, replaced or re-armed) cost O(log n) once.
  struct HeapRec {
    std::int64_t deadline = 0;
    std::uint64_t seq = 0;
  };

  struct StrictKey {
    of::Match match{};
    std::uint16_t priority = 0;
    bool operator==(const StrictKey&) const = default;
  };
  struct StrictKeyHash {
    std::size_t operator()(const StrictKey& k) const noexcept;
  };

  /// Fully-specified packet identity: key of the exact tier. Built from an
  /// exact Match or from a (port, header) pair; equality of keys is exactly
  /// Match::matches() for exact matches.
  struct ExactKey {
    std::uint16_t in_port = 0;
    std::uint64_t eth_src = 0;
    std::uint64_t eth_dst = 0;
    std::uint16_t eth_type = 0;
    std::uint32_t ip_src = 0;
    std::uint32_t ip_dst = 0;
    std::uint8_t ip_proto = 0;
    std::uint16_t tp_src = 0;
    std::uint16_t tp_dst = 0;
    bool operator==(const ExactKey&) const = default;
  };
  struct ExactKeyHash {
    std::size_t operator()(const ExactKey& k) const noexcept;
  };

  /// Mask tuple of a wildcard entry: which fields are constrained and how
  /// deep the IP prefixes reach. Prefix lengths are *effective* (forced to 0
  /// when the corresponding wildcard bit is set), so two matches that ignore
  /// a field identically always land in the same tuple group.
  struct TupleKey {
    std::uint32_t wildcards = 0;
    std::uint8_t src_prefix = 0;
    std::uint8_t dst_prefix = 0;
    bool operator==(const TupleKey&) const = default;
  };
  struct TupleKeyHash {
    std::size_t operator()(const TupleKey& k) const noexcept;
  };

  /// One tuple-space group: every member entry shares TupleKey, so masking a
  /// header by the tuple and hashing finds all matching members in one probe
  /// (masked-key equality is exactly Match::matches under this mask). The
  /// priority histogram keeps max_priority() exact across removals, which is
  /// what the cross-group early exit in lookup_pos relies on.
  struct TupleGroup {
    TupleKey key{};
    std::unordered_map<ExactKey, std::vector<std::uint32_t>, ExactKeyHash> buckets;
    std::map<std::uint16_t, std::uint32_t, std::greater<>> prio_counts;
    std::uint16_t max_priority() const noexcept { return prio_counts.begin()->first; }
  };

  static bool is_exact(const of::Match& m) noexcept;
  static TupleKey tuple_key_of(const of::Match& m) noexcept;
  static ExactKey masked_key_of(const of::Match& m, const TupleKey& t) noexcept;
  static ExactKey masked_key_of(PortNo in_port, const of::PacketHeader& h,
                                const TupleKey& t) noexcept;
  static ExactKey exact_key_of(const of::Match& m) noexcept;
  static ExactKey exact_key_of(PortNo in_port, const of::PacketHeader& h) noexcept;
  static std::int64_t entry_deadline(const FlowEntry& e) noexcept;
  static Meta compute_meta(const FlowEntry& e);

  /// True when entry at `a` wins a lookup tie against the one at `b`
  /// (higher priority, then earlier insertion).
  bool beats(std::uint32_t a, std::uint32_t b) const noexcept;

  std::uint32_t lookup_pos(PortNo in_port, const of::PacketHeader& hdr) const;

  void tuple_insert(std::uint32_t pos);
  void tuple_erase(std::uint32_t pos);
  /// Rebuild scan_order_ (tuple groups, descending max priority) if dirty.
  void ensure_scan_order() const;
  void arm(std::uint32_t pos);
  void digest_add(const Meta& m) noexcept;
  void digest_remove(const Meta& m) noexcept;
  /// Recompute hash terms after an in-place structural change (MODIFY).
  void refresh_hashes(std::uint32_t pos);
  /// Replace the entry at `pos` (ADD-replace / restore-replace) and fix
  /// every index; the strict identity is unchanged by construction.
  void replace_at(std::uint32_t pos, FlowEntry entry);
  /// Append a brand-new entry and index it.
  void append(FlowEntry entry);
  /// Remove the entries at `positions`, preserving the relative order of
  /// survivors, then reindex. PRECONDITION: `positions` sorted ascending
  /// (asserted in debug builds) — the compaction walk skips nothing
  /// otherwise.
  void remove_positions(const std::vector<std::uint32_t>& positions);
  /// Rebuild strict/exact/tuple/seq indexes from entries_ (metas kept).
  void reindex();
  /// Recompute everything from entries_ (metas, digests, indexes, heap).
  void rebuild_all();

  std::vector<FlowEntry> entries_;
  std::vector<Meta> meta_; ///< parallel to entries_
  std::uint64_t next_seq_ = 0;

  std::unordered_map<StrictKey, std::uint32_t, StrictKeyHash> strict_;
  std::unordered_map<ExactKey, std::vector<std::uint32_t>, ExactKeyHash> exact_;
  // Wildcard tier: tuple-space search. Groups live behind unique_ptr so the
  // raw pointers in scan_order_ survive swap-removal in groups_.
  std::vector<std::unique_ptr<TupleGroup>> groups_;
  std::unordered_map<TupleKey, std::uint32_t, TupleKeyHash> group_of_;
  mutable std::vector<TupleGroup*> scan_order_; ///< desc by max priority
  mutable bool scan_dirty_ = false;
  std::unordered_map<std::uint64_t, std::uint32_t> pos_by_seq_;
  std::vector<HeapRec> heap_; ///< min-heap via std::push_heap/pop_heap

  std::uint64_t digest_acc_ = 0x12345678ABCDEF01ULL; ///< seed of empty table
  std::uint64_t logical_acc_ = 0;
};

} // namespace legosdn::netsim
