// Switch flow table with OpenFlow 1.0 semantics.
//
// This is the state machine whose invertibility NetLog depends on, so the
// semantics are implemented carefully:
//  - lookup returns the highest-priority matching entry (ties broken by
//    insertion order, deterministically);
//  - ADD replaces an entry with identical match+priority (resetting counters);
//  - MODIFY / DELETE apply to all entries *covered by* the given match,
//    the STRICT variants only to the entry with identical match+priority;
//  - DELETE honours the out_port filter;
//  - idle and hard timeouts expire entries and emit flow-removed records.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "openflow/messages.hpp"

namespace legosdn::netsim {

struct FlowEntry {
  of::Match match{};
  std::uint16_t priority = 0x8000;
  std::uint64_t cookie = 0;
  std::uint16_t idle_timeout = 0; ///< seconds; 0 = never
  std::uint16_t hard_timeout = 0; ///< seconds; 0 = never
  bool send_flow_removed = false;
  of::ActionList actions;

  // Mutable runtime state.
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  SimTime install_time{kSimStart};
  SimTime last_used{kSimStart};
  std::uint64_t seq = 0; ///< insertion order, assigned by the table

  bool operator==(const FlowEntry&) const = default;

  /// Same identity in the flow table (strict match semantics).
  bool same_flow(const of::Match& m, std::uint16_t prio) const {
    return priority == prio && match == m;
  }

  bool outputs_to(PortNo port) const;
};

/// Outcome of applying a FlowMod; before-images feed NetLog's undo log.
struct FlowModResult {
  bool ok = true;
  std::string error;                 ///< set when !ok (e.g. overlap check)
  std::vector<FlowEntry> added;      ///< entries newly installed
  std::vector<FlowEntry> removed;    ///< full before-images of removed entries
  std::vector<FlowEntry> modified;   ///< before-images of modified entries
};

class FlowTable {
public:
  /// Apply a flow-mod at virtual time `now`.
  FlowModResult apply(const of::FlowMod& mod, SimTime now);

  /// Dataplane lookup. Updates counters of the hit entry.
  /// Returns nullptr on table miss.
  const FlowEntry* match_packet(PortNo in_port, const of::PacketHeader& hdr,
                                std::uint32_t bytes, SimTime now);

  /// Lookup without touching counters (used by the invariant checker).
  const FlowEntry* peek(PortNo in_port, const of::PacketHeader& hdr) const;

  /// Remove timed-out entries; returns their before-images together with the
  /// expiry reason so the switch can emit flow-removed messages.
  struct Expired {
    FlowEntry entry;
    of::FlowRemovedReason reason;
  };
  std::vector<Expired> expire(SimTime now);

  /// Reinstall an entry preserving all runtime state (counters, timestamps).
  /// Used by NetLog rollback; replaces any entry with the same match+priority.
  void restore(const FlowEntry& entry);

  /// Find the entry with identical match+priority.
  const FlowEntry* find_strict(const of::Match& m, std::uint16_t priority) const;

  const std::vector<FlowEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

  /// Full-state snapshot/restore; equality of snapshots defines "identical
  /// network state" in the rollback property tests.
  std::vector<FlowEntry> snapshot() const { return entries_; }
  void restore_snapshot(std::vector<FlowEntry> snap) { entries_ = std::move(snap); }

  /// Deterministic state digest (order-insensitive) for fast comparison.
  std::uint64_t digest() const;

private:
  std::vector<FlowEntry> entries_;
  std::uint64_t next_seq_ = 0;
};

} // namespace legosdn::netsim
