// UDP datagram channel over loopback, with fragmentation/reassembly so that
// logical frames (e.g. multi-megabyte snapshot blobs) are not limited by the
// UDP datagram size.
//
// Chunk wire format: u64 frame_id | u32 chunk_idx | u32 chunk_count | bytes.
// Loopback delivery is in-order and effectively lossless; a chunk arriving
// for a different frame than the one being assembled discards the partial
// frame (the sender gave up / restarted). recv_frame() applies a deadline so
// a dead peer turns into Error::kTimeout rather than a hang.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/result.hpp"

namespace legosdn::appvisor {

struct PeerAddr {
  std::uint32_t ip = 0;   ///< host order; loopback in practice
  std::uint16_t port = 0; ///< host order

  bool valid() const noexcept { return port != 0; }
};

class UdpChannel {
public:
  UdpChannel() = default;
  ~UdpChannel();

  UdpChannel(const UdpChannel&) = delete;
  UdpChannel& operator=(const UdpChannel&) = delete;

  /// Bind an ephemeral UDP port on 127.0.0.1.
  Status open();
  void close();
  bool is_open() const noexcept { return fd_ >= 0; }

  /// Local port (host order) after open().
  std::uint16_t local_port() const noexcept { return local_port_; }

  /// Send one logical frame to the peer, fragmenting as needed.
  Status send_frame(const PeerAddr& to, std::span<const std::uint8_t> frame);

  struct Received {
    std::vector<std::uint8_t> frame;
    PeerAddr from;
  };

  /// Receive one logical frame, waiting up to timeout_ms. Returns kTimeout
  /// when the deadline passes with no complete frame.
  Result<Received> recv_frame(int timeout_ms);

private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::uint64_t next_frame_id_ = 1;

  // Reassembly state for the frame currently being received.
  std::uint64_t assembling_id_ = 0;
  std::uint32_t assembling_count_ = 0;
  std::uint32_t assembling_have_ = 0;
  std::vector<std::uint8_t> assembling_;
  PeerAddr assembling_from_{};

  static constexpr std::size_t kChunkPayload = 32 * 1024;
};

} // namespace legosdn::appvisor
