// UDP datagram channel over loopback, with fragmentation/reassembly so that
// logical frames (e.g. multi-megabyte snapshot blobs) are not limited by the
// UDP datagram size.
//
// Chunk wire format: u64 frame_id | u32 chunk_idx | u32 chunk_count | bytes.
//
// Reassembly is loss-tolerant: a per-chunk received-bitmap accepts chunks in
// any order, drops retransmitted duplicates of the in-flight frame, and
// suppresses stragglers of the most recently completed frame (a late
// duplicate must not start a bogus partial assembly that could evict the
// next real frame). A chunk for a *different* frame id than the one being
// assembled discards the partial frame — the sender gave up or retried with
// a fresh id. recv_frame() applies a deadline so a dead peer turns into
// Error::kTimeout rather than a hang.
//
// Datagram transmission goes through a virtual hook so FaultyChannel can
// inject drop/duplicate/reorder/delay faults deterministically.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "appvisor/transport_stats.hpp"
#include "common/result.hpp"

namespace legosdn::appvisor {

struct PeerAddr {
  std::uint32_t ip = 0;   ///< host order; loopback in practice
  std::uint16_t port = 0; ///< host order

  bool valid() const noexcept { return port != 0; }
};

class UdpChannel {
public:
  /// Max payload bytes per chunk datagram (public so tests can craft chunks).
  static constexpr std::size_t kChunkPayload = 32 * 1024;
  /// Chunk header bytes: u64 frame_id + u32 chunk_idx + u32 chunk_count.
  static constexpr std::size_t kChunkHeader = 16;

  UdpChannel() = default;
  virtual ~UdpChannel();

  UdpChannel(const UdpChannel&) = delete;
  UdpChannel& operator=(const UdpChannel&) = delete;

  /// Bind an ephemeral UDP port on 127.0.0.1.
  Status open();
  void close();
  bool is_open() const noexcept { return fd_ >= 0; }

  /// Local port (host order) after open().
  std::uint16_t local_port() const noexcept { return local_port_; }

  /// Send one logical frame to the peer, fragmenting as needed.
  Status send_frame(const PeerAddr& to, std::span<const std::uint8_t> frame);

  struct Received {
    std::vector<std::uint8_t> frame;
    PeerAddr from;
  };

  /// Receive one logical frame, waiting up to timeout_ms. Returns kTimeout
  /// when the deadline passes with no complete frame.
  Result<Received> recv_frame(int timeout_ms);

  const ChannelStats& stats() const noexcept { return stats_; }

protected:
  /// Hand one chunk datagram to the wire. FaultyChannel overrides this to
  /// drop/duplicate/hold datagrams; the default transmits directly.
  virtual Status send_datagram(const PeerAddr& to,
                               std::span<const std::uint8_t> datagram);

  /// Called once after the last chunk of a frame went through send_datagram;
  /// FaultyChannel flushes held-back (reordered) datagrams here.
  virtual void flush_datagrams(const PeerAddr& to);

  /// The actual sendto(); overrides call this to put bytes on the wire.
  Status transmit(const PeerAddr& to, std::span<const std::uint8_t> datagram);

private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::uint64_t next_frame_id_ = 1;

  // Reassembly state for the frame currently being received. The bitmap (not
  // a bare counter) is what makes duplicated/reordered chunks safe: a frame
  // completes only when every distinct chunk index has arrived.
  bool assembling_active_ = false;
  std::uint64_t assembling_id_ = 0;
  std::uint32_t assembling_count_ = 0;
  std::uint32_t assembling_have_ = 0;
  std::vector<bool> assembling_received_;
  bool assembling_have_final_ = false;
  std::size_t assembling_final_len_ = 0;
  std::vector<std::uint8_t> assembling_;
  PeerAddr assembling_from_{};

  // Straggler suppression: duplicates of the last completed frame are
  // dropped instead of opening a bogus partial assembly.
  bool has_completed_ = false;
  std::uint64_t last_completed_id_ = 0;

  ChannelStats stats_;
};

} // namespace legosdn::appvisor
