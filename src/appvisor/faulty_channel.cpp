#include "appvisor/faulty_channel.hpp"

#include <unistd.h>

namespace legosdn::appvisor {

FaultyChannel::~FaultyChannel() = default;

Status FaultyChannel::release_held() {
  if (!held_) return Status::success();
  Held h = std::move(*held_);
  held_.reset();
  return transmit(h.to, h.bytes);
}

Status FaultyChannel::send_datagram(const PeerAddr& to,
                                    std::span<const std::uint8_t> datagram) {
  if (spec_.drop > 0 && rng_.chance(spec_.drop)) {
    injected_.drops += 1;
    return Status::success(); // silently lost; the RPC retry layer recovers
  }
  if (spec_.delay > 0 && rng_.chance(spec_.delay)) {
    injected_.delays += 1;
    if (spec_.delay_us > 0) ::usleep(static_cast<useconds_t>(spec_.delay_us));
  }
  if (spec_.reorder > 0 && !held_ && rng_.chance(spec_.reorder)) {
    injected_.reorders += 1;
    held_ = Held{to, {datagram.begin(), datagram.end()}};
    return Status::success(); // released after the next datagram (or flush)
  }
  if (auto st = transmit(to, datagram); !st) return st;
  if (auto st = release_held(); !st) return st;
  if (spec_.duplicate > 0 && rng_.chance(spec_.duplicate)) {
    injected_.duplicates += 1;
    return transmit(to, datagram);
  }
  return Status::success();
}

void FaultyChannel::flush_datagrams(const PeerAddr&) {
  // End of a frame: a datagram held for reordering must still make it out,
  // otherwise a hold on the final chunk would turn into an unintended drop.
  release_held();
}

} // namespace legosdn::appvisor
