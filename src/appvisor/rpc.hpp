// The AppVisor proxy <-> stub RPC protocol (paper §4.1).
//
// "The stub is a light-weight wrapper around the actual SDN-App and converts
//  all calls from the SDN-App to the controller to messages which are then
//  delivered to the proxy. ... the stub and proxy implement a simple
//  RPC-like mechanism."
//
// Frames are length-delimited byte strings carried over the UdpChannel
// (which handles fragmentation for large snapshots).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "controller/app.hpp"
#include "controller/event_codec.hpp"
#include "openflow/codec.hpp"

namespace legosdn::appvisor {

enum class RpcType : std::uint8_t {
  // stub -> proxy
  kRegister = 0,      ///< app name + subscriptions
  kEventDone = 1,     ///< disposition + emitted message bundle
  kSnapshotReply = 2, ///< serialized app state
  kRestoreAck = 3,
  kHeartbeat = 4,     ///< periodic liveness beacon
  kCrashNotice = 5,   ///< last words before abort (diagnostics for the ticket)
  // proxy -> stub
  kRegisterAck = 8,
  kDeliverEvent = 9,   ///< event to process
  kSnapshotRequest = 10,
  kRestoreRequest = 11, ///< state to install
  kShutdown = 12,
};

struct RpcFrame {
  RpcType type{};
  std::uint64_t seq = 0; ///< request/response pairing
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> encode_frame(const RpcFrame& f);
Result<RpcFrame> decode_frame(std::span<const std::uint8_t> bytes);

// --- payload helpers ---

struct RegisterPayload {
  std::string app_name;
  std::vector<ctl::EventType> subscriptions;
};
std::vector<std::uint8_t> encode_register(const RegisterPayload& p);
Result<RegisterPayload> decode_register(std::span<const std::uint8_t> bytes);

struct EventDonePayload {
  ctl::Disposition disposition = ctl::Disposition::kContinue;
  std::vector<of::Message> emitted;
};
std::vector<std::uint8_t> encode_event_done(const EventDonePayload& p);
Result<EventDonePayload> decode_event_done(std::span<const std::uint8_t> bytes);

struct DeliverEventPayload {
  std::int64_t now_ns = 0;
  ctl::Event event;
};
std::vector<std::uint8_t> encode_deliver(const DeliverEventPayload& p);
Result<DeliverEventPayload> decode_deliver(std::span<const std::uint8_t> bytes);

} // namespace legosdn::appvisor
