// AppVisor isolation domains.
//
// An IsolationDomain hosts exactly one SDN-App behind a fault boundary. The
// proxy side (LegoController) talks only to this interface; two backends
// implement it:
//
//   InProcessDomain — the app runs in-process; a crash is an AppCrash
//   exception caught at the domain boundary. Deterministic and fast; used by
//   most tests and benchmarks.
//
//   ProcessDomain — the app runs in a fork()ed child process wrapped by a
//   stub, communicating with the proxy over UDP (the paper's architecture,
//   §4.1). A crash is real process death, detected via RPC failure and
//   missed heartbeats.
//
// In both backends the app's emitted messages are *collected* by the domain
// and returned to the proxy instead of being applied directly — the proxy
// hands them to NetLog as one transaction bundle, which is what makes
// all-or-nothing recovery possible.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "appvisor/transport_stats.hpp"
#include "common/clock.hpp"
#include "common/result.hpp"
#include "controller/app.hpp"

namespace legosdn::appvisor {

/// ServiceApi implementation that buffers an app's sends during one event.
class CollectingServiceApi : public ctl::ServiceApi {
public:
  explicit CollectingServiceApi(SimTime now, std::uint32_t* xid_counter)
      : now_(now), xid_counter_(xid_counter) {}

  void send(const of::Message& msg) override { emitted_.push_back(msg); }
  std::uint32_t next_xid() override { return (*xid_counter_)++; }
  SimTime now() const override { return now_; }

  std::vector<of::Message> take() && { return std::move(emitted_); }

private:
  SimTime now_;
  std::uint32_t* xid_counter_;
  std::vector<of::Message> emitted_;
};

/// Result of delivering one event to an isolated app.
struct EventOutcome {
  enum class Kind {
    kOk,      ///< handler returned normally
    kCrashed, ///< fail-stop crash (exception / process death)
    kTimeout, ///< no response within the deadline (treated as crash)
  };

  Kind kind = Kind::kOk;
  ctl::Disposition disposition = ctl::Disposition::kContinue;
  std::vector<of::Message> emitted; ///< the app's output bundle
  std::string crash_info;           ///< diagnostics for the problem ticket

  bool ok() const noexcept { return kind == Kind::kOk; }
};

class IsolationDomain {
public:
  virtual ~IsolationDomain() = default;

  virtual std::string app_name() const = 0;
  virtual std::vector<ctl::EventType> subscriptions() const = 0;

  /// Launch the domain (spawn the stub process / mark ready).
  virtual Status start() = 0;

  /// Is the app currently able to take events?
  virtual bool alive() const = 0;

  /// Deliver one event and wait for the handler to finish.
  virtual EventOutcome deliver(const ctl::Event& event, SimTime now) = 0;

  /// Capture the app's logical state (CRIU substitute).
  virtual Result<std::vector<std::uint8_t>> snapshot() = 0;

  /// Revive the app (restarting the process if dead) and install `state`.
  virtual Status restore(std::span<const std::uint8_t> state) = 0;

  /// Cold restart: revive with fresh (empty) state.
  virtual Status restart() = 0;

  /// Orderly shutdown (kills the stub process, if any).
  virtual void shutdown() = 0;

  /// Transport counters for domains backed by a real channel (ProcessDomain);
  /// nullptr for in-process domains, which have no transport.
  virtual const TransportStats* transport_stats() const { return nullptr; }
};

using DomainPtr = std::unique_ptr<IsolationDomain>;

} // namespace legosdn::appvisor
