// In-process isolation backend: the app lives in the proxy's address space,
// and the fault boundary is a try/catch around the handler. Deterministic,
// allocation-cheap, and semantically identical to the process backend from
// the proxy's point of view.
#pragma once

#include "appvisor/isolation.hpp"

namespace legosdn::appvisor {

class InProcessDomain : public IsolationDomain {
public:
  explicit InProcessDomain(ctl::AppPtr app) : app_(std::move(app)) {}

  std::string app_name() const override { return app_->name(); }
  std::vector<ctl::EventType> subscriptions() const override {
    return app_->subscriptions();
  }

  Status start() override {
    alive_ = true;
    return Status::success();
  }

  bool alive() const override { return alive_; }

  EventOutcome deliver(const ctl::Event& event, SimTime now) override;

  Result<std::vector<std::uint8_t>> snapshot() override;
  Status restore(std::span<const std::uint8_t> state) override;
  Status restart() override;
  void shutdown() override { alive_ = false; }

  /// Test access to the hosted app.
  ctl::App& app() noexcept { return *app_; }

private:
  ctl::AppPtr app_;
  bool alive_ = false;
  std::uint32_t xid_ = 1;
};

} // namespace legosdn::appvisor
