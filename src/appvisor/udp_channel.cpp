#include "appvisor/udp_channel.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace legosdn::appvisor {
namespace {

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  }
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}
void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v & 0xFF);
    v >>= 8;
  }
}
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | p[i];
  return v;
}

} // namespace

UdpChannel::~UdpChannel() { close(); }

Status UdpChannel::open() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return Error{Error::Code::kIo, "socket: " + std::string(strerror(errno))};
  // Generous buffers: snapshot bursts can be large.
  int buf = 4 * 1024 * 1024;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0; // ephemeral
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return Error{Error::Code::kIo, "bind: " + std::string(strerror(errno))};
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close();
    return Error{Error::Code::kIo, "getsockname: " + std::string(strerror(errno))};
  }
  local_port_ = ntohs(addr.sin_port);
  // Frame ids are namespaced by the sender's port so a respawned peer (fresh
  // channel, ids restarting at 1) cannot collide with ids the receiver has
  // already completed or is assembling.
  next_frame_id_ = (static_cast<std::uint64_t>(local_port_) << 32) | 1;
  return Status::success();
}

void UdpChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status UdpChannel::transmit(const PeerAddr& to, std::span<const std::uint8_t> datagram) {
  if (fd_ < 0) return Error{Error::Code::kIo, "channel not open"};
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(to.ip == 0 ? INADDR_LOOPBACK : to.ip);
  dst.sin_port = htons(to.port);
  const ssize_t sent = ::sendto(fd_, datagram.data(), datagram.size(), 0,
                                reinterpret_cast<sockaddr*>(&dst), sizeof(dst));
  if (sent < 0)
    return Error{Error::Code::kIo, "sendto: " + std::string(strerror(errno))};
  stats_.chunks_sent += 1;
  return Status::success();
}

Status UdpChannel::send_datagram(const PeerAddr& to,
                                 std::span<const std::uint8_t> datagram) {
  return transmit(to, datagram);
}

void UdpChannel::flush_datagrams(const PeerAddr&) {}

Status UdpChannel::send_frame(const PeerAddr& to, std::span<const std::uint8_t> frame) {
  if (fd_ < 0) return Error{Error::Code::kIo, "channel not open"};
  const std::uint64_t id = next_frame_id_++;
  const std::size_t n_chunks =
      frame.empty() ? 1 : (frame.size() + kChunkPayload - 1) / kChunkPayload;
  std::vector<std::uint8_t> buf(kChunkHeader + kChunkPayload);
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t off = c * kChunkPayload;
    const std::size_t len = std::min(kChunkPayload, frame.size() - off);
    put_u64(buf.data(), id);
    put_u32(buf.data() + 8, static_cast<std::uint32_t>(c));
    put_u32(buf.data() + 12, static_cast<std::uint32_t>(n_chunks));
    if (len) std::memcpy(buf.data() + kChunkHeader, frame.data() + off, len);
    if (auto st = send_datagram(to, {buf.data(), kChunkHeader + len}); !st) return st;
  }
  flush_datagrams(to);
  stats_.frames_sent += 1;
  return Status::success();
}

Result<UdpChannel::Received> UdpChannel::recv_frame(int timeout_ms) {
  if (fd_ < 0) return Error{Error::Code::kIo, "channel not open"};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::vector<std::uint8_t> buf(kChunkHeader + kChunkPayload);

  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return Error{Error::Code::kTimeout, "recv timeout"};
    // Round the wait up: truncation would turn short timeouts (1-2 ms) into
    // zero and skip the poll entirely even with data already queued.
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count() +
        1;
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Error{Error::Code::kIo, "poll: " + std::string(strerror(errno))};
    }
    if (pr == 0) return Error{Error::Code::kTimeout, "recv timeout"};

    sockaddr_in src{};
    socklen_t slen = sizeof(src);
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&src), &slen);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Error{Error::Code::kIo, "recvfrom: " + std::string(strerror(errno))};
    }
    if (static_cast<std::size_t>(n) < kChunkHeader) continue; // runt; ignore

    const std::uint64_t id = get_u64(buf.data());
    const std::uint32_t idx = get_u32(buf.data() + 8);
    const std::uint32_t count = get_u32(buf.data() + 12);
    if (count == 0 || idx >= count) continue; // malformed; ignore
    stats_.chunks_received += 1;

    if (has_completed_ && id == last_completed_id_) {
      // Straggler duplicate of the frame we just finished: a retransmitted
      // chunk must not open a bogus partial assembly.
      stats_.stale_chunks_dropped += 1;
      continue;
    }

    PeerAddr from{ntohl(src.sin_addr.s_addr), ntohs(src.sin_port)};
    if (!assembling_active_ || id != assembling_id_) {
      // New frame begins; drop any partial one (the sender retried with a
      // fresh frame id, so the partial can never complete).
      if (assembling_active_) stats_.reassembly_aborts += 1;
      assembling_active_ = true;
      assembling_id_ = id;
      assembling_count_ = count;
      assembling_have_ = 0;
      assembling_received_.assign(count, false);
      assembling_have_final_ = false;
      assembling_final_len_ = 0;
      assembling_.assign(static_cast<std::size_t>(count) * kChunkPayload, 0);
      assembling_from_ = from;
    }
    if (count != assembling_count_) continue; // corrupt header; ignore chunk
    if (assembling_received_[idx]) {
      // Duplicate of a chunk we already hold. Counting it again (the old
      // bare-counter scheme) let a frame "complete" with a zero-filled hole.
      stats_.dup_chunks_dropped += 1;
      continue;
    }
    const std::size_t len = static_cast<std::size_t>(n) - kChunkHeader;
    std::memcpy(assembling_.data() + static_cast<std::size_t>(idx) * kChunkPayload,
                buf.data() + kChunkHeader, len);
    assembling_received_[idx] = true;
    assembling_have_ += 1;
    if (idx == assembling_count_ - 1) {
      // Final chunk defines the true frame length; it may arrive out of
      // order, so the resize happens only at completion.
      assembling_have_final_ = true;
      assembling_final_len_ = len;
    }
    if (assembling_have_ == assembling_count_) {
      assembling_.resize(
          static_cast<std::size_t>(assembling_count_ - 1) * kChunkPayload +
          assembling_final_len_);
      Received out{std::move(assembling_), assembling_from_};
      assembling_.clear();
      assembling_active_ = false;
      has_completed_ = true;
      last_completed_id_ = assembling_id_;
      stats_.frames_received += 1;
      return out;
    }
  }
}

} // namespace legosdn::appvisor
