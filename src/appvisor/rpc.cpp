#include "appvisor/rpc.hpp"

namespace legosdn::appvisor {

std::vector<std::uint8_t> encode_frame(const RpcFrame& f) {
  ByteWriter w(16 + f.payload.size());
  w.u8(static_cast<std::uint8_t>(f.type));
  w.u64(f.seq);
  w.blob(f.payload);
  return std::move(w).take();
}

Result<RpcFrame> decode_frame(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  RpcFrame f;
  f.type = static_cast<RpcType>(r.u8());
  f.seq = r.u64();
  f.payload = r.blob();
  if (r.error()) return Error{Error::Code::kTruncated, "rpc frame truncated"};
  return f;
}

std::vector<std::uint8_t> encode_register(const RegisterPayload& p) {
  ByteWriter w;
  w.str(p.app_name);
  w.u16(static_cast<std::uint16_t>(p.subscriptions.size()));
  for (ctl::EventType t : p.subscriptions) w.u8(static_cast<std::uint8_t>(t));
  return std::move(w).take();
}

Result<RegisterPayload> decode_register(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  RegisterPayload p;
  p.app_name = r.str();
  const std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
    const std::uint8_t t = r.u8();
    if (t < ctl::kEventTypeCount)
      p.subscriptions.push_back(static_cast<ctl::EventType>(t));
  }
  if (r.error()) return Error{Error::Code::kTruncated, "register truncated"};
  return p;
}

std::vector<std::uint8_t> encode_event_done(const EventDonePayload& p) {
  ByteWriter w;
  w.u8(p.disposition == ctl::Disposition::kStop ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(p.emitted.size()));
  for (const auto& m : p.emitted) w.blob(of::encode(m));
  return std::move(w).take();
}

Result<EventDonePayload> decode_event_done(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  EventDonePayload p;
  p.disposition = r.u8() ? ctl::Disposition::kStop : ctl::Disposition::kContinue;
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    auto frame = r.blob();
    if (r.error()) break;
    auto msg = of::decode(frame);
    if (!msg) return msg.error();
    p.emitted.push_back(std::move(msg).value());
  }
  if (r.error()) return Error{Error::Code::kTruncated, "event-done truncated"};
  return p;
}

std::vector<std::uint8_t> encode_deliver(const DeliverEventPayload& p) {
  ByteWriter w;
  w.u64(static_cast<std::uint64_t>(p.now_ns));
  ctl::encode_event(p.event, w);
  return std::move(w).take();
}

Result<DeliverEventPayload> decode_deliver(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  DeliverEventPayload p;
  p.now_ns = static_cast<std::int64_t>(r.u64());
  auto ev = ctl::decode_event(r);
  if (!ev) return ev.error();
  p.event = std::move(ev).value();
  return p;
}

} // namespace legosdn::appvisor
