// Deterministic fault injection for the AppVisor transport.
//
// FaultyChannel is a UdpChannel whose *outgoing* datagrams pass through a
// seeded fault model: each chunk can be dropped, duplicated, held back and
// released after the next chunk (reorder), or delayed on the wire. Receiving
// is untouched — to perturb both directions of a proxy/stub pair, both ends
// use a FaultyChannel (ProcessDomain::Config::faults does exactly that).
//
// All randomness comes from one explicitly seeded Rng so lossy-channel tests
// and the loss-rate bench sweep are reproducible run-to-run.
#pragma once

#include <optional>

#include "appvisor/udp_channel.hpp"
#include "common/rng.hpp"

namespace legosdn::appvisor {

/// Per-datagram fault probabilities. All zero (the default) means the
/// channel behaves exactly like a plain UdpChannel.
struct FaultSpec {
  double drop = 0;      ///< datagram vanishes
  double duplicate = 0; ///< datagram is sent twice back-to-back
  double reorder = 0;   ///< datagram is held and released after the next one
  double delay = 0;     ///< datagram is sent after sleeping delay_us
  int delay_us = 2000;  ///< wire delay applied on a delay fault
  std::uint64_t seed = 0x51E55EDULL;

  bool enabled() const noexcept {
    return drop > 0 || duplicate > 0 || reorder > 0 || delay > 0;
  }
};

/// Counters for the faults actually injected (useful in assertions: a test
/// at 10% drop over 1000 chunks should have seen roughly 100 drops).
struct InjectedFaults {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reorders = 0;
  std::uint64_t delays = 0;
};

class FaultyChannel : public UdpChannel {
public:
  explicit FaultyChannel(FaultSpec spec) : spec_(spec), rng_(spec.seed) {}
  ~FaultyChannel() override;

  const FaultSpec& spec() const noexcept { return spec_; }
  const InjectedFaults& injected() const noexcept { return injected_; }

protected:
  Status send_datagram(const PeerAddr& to,
                       std::span<const std::uint8_t> datagram) override;
  void flush_datagrams(const PeerAddr& to) override;

private:
  struct Held {
    PeerAddr to;
    std::vector<std::uint8_t> bytes;
  };

  Status release_held();

  FaultSpec spec_;
  Rng rng_;
  InjectedFaults injected_;
  std::optional<Held> held_;
};

} // namespace legosdn::appvisor
