// Process isolation backend — the paper's actual architecture (§4.1).
//
// The proxy side (this class) fork()s a child process that runs the stub
// event loop around the SDN-App. Proxy and stub speak the RPC protocol over
// UDP on loopback. A fail-stop bug in the app aborts the *child process*;
// the proxy detects it via the crash notice, RPC timeout, or waitpid, and the
// controller keeps running — the fate-sharing relationship is severed by a
// real OS process boundary.
//
// The RPC exchange survives a lossy channel: a request that draws no reply
// within the per-attempt timeout is retransmitted with the *same* sequence
// number under exponential backoff; the stub deduplicates by sequence number
// and replays its cached reply, so a handler is never executed twice for one
// request. Only when retries are exhausted does the proxy classify the stub
// as crashed (child exited) or wedged (killed) — a transport flake is not a
// fail-stop crash.
//
// Checkpoint/restore: instead of CRIU (unavailable here; see DESIGN.md §5)
// the stub serializes the app's logical state through snapshot_state() and a
// re-spawned stub installs it through restore_state().
#pragma once

#include <sys/types.h>

#include <chrono>
#include <memory>

#include "appvisor/faulty_channel.hpp"
#include "appvisor/isolation.hpp"
#include "appvisor/rpc.hpp"
#include "appvisor/transport_stats.hpp"
#include "appvisor/udp_channel.hpp"

namespace legosdn::appvisor {

class ProcessDomain : public IsolationDomain {
public:
  struct Config {
    int deliver_timeout_ms = 5000; ///< event-handling deadline
    int rpc_timeout_ms = 5000;     ///< snapshot/restore/handshake deadline
    int heartbeat_interval_ms = 50;

    // Retry policy for one RPC call: the first retransmit fires after
    // retry_initial_timeout_ms of silence, then backs off geometrically,
    // all bounded by the overall deliver/rpc deadline above.
    int retry_initial_timeout_ms = 250;
    int retry_max = 6;
    double retry_backoff = 2.0;

    /// Fault injection applied to *both* directions (proxy->stub and
    /// stub->proxy) when enabled; all-zero (default) uses plain channels.
    FaultSpec faults{};
  };

  explicit ProcessDomain(ctl::AppPtr app) : ProcessDomain(std::move(app), Config{}) {}
  ProcessDomain(ctl::AppPtr app, Config cfg);
  ~ProcessDomain() override;

  std::string app_name() const override { return app_->name(); }
  std::vector<ctl::EventType> subscriptions() const override {
    return app_->subscriptions();
  }

  Status start() override;
  bool alive() const override { return alive_; }

  EventOutcome deliver(const ctl::Event& event, SimTime now) override;
  Result<std::vector<std::uint8_t>> snapshot() override;
  Status restore(std::span<const std::uint8_t> state) override;
  Status restart() override;
  void shutdown() override;

  const TransportStats* transport_stats() const override { return &tstats_; }

  pid_t child_pid() const noexcept { return child_pid_; }

  /// Non-blocking liveness check between deliveries: drains pending
  /// heartbeats/crash notices and reaps a dead child. "To further help the
  /// proxy in detecting crashes quickly, the stub also sends periodic heart
  /// beat messages" (§4.1). Returns the (possibly updated) alive state.
  bool poll_liveness();

  /// Milliseconds since the last frame (heartbeat or reply) from the stub;
  /// -1 when nothing has ever been received.
  long ms_since_heartbeat() const;

private:
  Status spawn();
  void kill_child();
  bool child_exited();

  /// Send a request and wait for a frame of `expect` type (heartbeats and
  /// stale frames are skipped; a lost RegisterAck is re-sent). Silent
  /// attempts are retransmitted with backoff before the overall deadline
  /// declares the stub crashed (child exited) or wedged (killed).
  Result<RpcFrame> call(RpcType req, std::span<const std::uint8_t> payload,
                        RpcType expect, int timeout_ms);

  ctl::AppPtr app_; ///< pristine template; mutated only inside children
  Config cfg_;
  std::unique_ptr<UdpChannel> chan_; ///< FaultyChannel when cfg_.faults enabled
  PeerAddr stub_addr_{};
  pid_t child_pid_ = -1;
  bool alive_ = false;
  std::uint64_t next_seq_ = 1;
  std::string last_crash_info_;
  std::chrono::steady_clock::time_point last_heartbeat_{};
  TransportStats tstats_;
};

/// The stub main loop; runs in the child and never returns.
[[noreturn]] void run_stub(ctl::App& app, std::uint16_t proxy_port,
                           const ProcessDomain::Config& cfg);

} // namespace legosdn::appvisor
