// AppVisor: the proxy-side registry of isolated SDN-Apps.
//
// "The proxy ... registers itself for these message types with the
//  controller and maintains the per-application subscriptions in a table."
//
// This class owns the isolation domains, the subscription table, and
// per-app failure bookkeeping. LegoController consults it to drive dispatch.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "appvisor/inprocess_domain.hpp"
#include "appvisor/isolation.hpp"
#include "appvisor/process_domain.hpp"

namespace legosdn::appvisor {

enum class Backend {
  kInProcess, ///< deterministic fault boundary (exception at the domain edge)
  kProcess,   ///< real fork()ed stub over UDP (the paper's prototype)
};

/// Shard tag for apps not pinned to one dispatch lane.
inline constexpr int kAllShards = -1;

struct AppEntry {
  AppId id{};
  DomainPtr domain;
  bool subscribed[ctl::kEventTypeCount] = {};

  /// Sharded dispatch: >= 0 pins this entry (a per-shard clone) to one lane;
  /// kAllShards means any lane may deliver, serialized through `mu`.
  int shard = kAllShards;
  /// Per-entry delivery lock for kAllShards entries under sharded dispatch
  /// (unique_ptr keeps AppEntry movable). Unused by serial dispatch.
  std::unique_ptr<std::mutex> mu = std::make_unique<std::mutex>();

  // bookkeeping
  std::uint64_t events_delivered = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
};

class AppVisor {
public:
  AppVisor() = default;
  AppVisor(const AppVisor&) = delete;
  AppVisor& operator=(const AppVisor&) = delete;

  /// Register an app under the chosen isolation backend, optionally pinned
  /// to one dispatch shard (a per-shard clone).
  AppId add_app(ctl::AppPtr app, Backend backend,
                ProcessDomain::Config cfg = {}, int shard = kAllShards);

  /// Register a pre-built domain (used by diversity/clone wrappers).
  AppId add_domain(DomainPtr domain, int shard = kAllShards);

  /// Start every domain. Fails fast on the first domain that cannot start.
  Status start_all();

  void shutdown_all();

  std::vector<AppEntry>& entries() noexcept { return entries_; }
  const std::vector<AppEntry>& entries() const noexcept { return entries_; }
  AppEntry* entry(AppId id);

  /// Apps subscribed to an event type, in registration (dispatch) order.
  std::vector<AppEntry*> subscribers(ctl::EventType type);

  /// Sum of the transport counters of every domain with a real channel
  /// (process backend); in-process domains contribute nothing.
  TransportStats transport_stats() const;

private:
  std::vector<AppEntry> entries_;
};

} // namespace legosdn::appvisor
