#include "appvisor/process_domain.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/log.hpp"

namespace legosdn::appvisor {
namespace {

std::unique_ptr<UdpChannel> make_channel(const FaultSpec& faults) {
  if (faults.enabled()) return std::make_unique<FaultyChannel>(faults);
  return std::make_unique<UdpChannel>();
}

} // namespace

// ---------------------------------------------------------------------------
// Stub (child side)
// ---------------------------------------------------------------------------

void run_stub(ctl::App& app, std::uint16_t proxy_port,
              const ProcessDomain::Config& cfg) {
  // The stub perturbs its own outgoing datagrams too, so fault injection
  // covers both directions of the exchange. Distinct seed: identical fault
  // sequences on both sides would correlate request and reply loss.
  FaultSpec stub_faults = cfg.faults;
  stub_faults.seed = cfg.faults.seed * 0x9E3779B97F4A7C15ULL + 1;
  std::unique_ptr<UdpChannel> chan_owner = make_channel(stub_faults);
  UdpChannel& chan = *chan_owner;
  if (!chan.open()) _exit(70);
  const PeerAddr proxy{0, proxy_port};

  // Register with the proxy: app name + subscriptions.
  RegisterPayload reg{app.name(), app.subscriptions()};
  RpcFrame frame{RpcType::kRegister, 0, encode_register(reg)};
  if (!chan.send_frame(proxy, encode_frame(frame))) _exit(71);

  // Wait for the ack; re-send a few times in case the proxy was not yet
  // in its receive loop (or the register/ack datagram was lost).
  bool acked = false;
  for (int attempt = 0; attempt < 50 && !acked; ++attempt) {
    auto rcv = chan.recv_frame(100);
    if (rcv) {
      auto f = decode_frame(rcv.value().frame);
      if (f && f.value().type == RpcType::kRegisterAck) acked = true;
      continue;
    }
    chan.send_frame(proxy, encode_frame(frame));
  }
  if (!acked) _exit(72);

  // Duplicate suppression: the proxy retransmits a silent request with the
  // same seq. Requests are strictly serialized, so one cached reply is
  // enough — a retransmit of the last handled request replays the cached
  // reply without re-executing the (non-idempotent) handler; anything older
  // was already answered and superseded, so it is dropped.
  std::uint64_t last_seq = 0;
  bool have_reply = false;
  std::vector<std::uint8_t> last_reply_wire;
  auto reply = [&](RpcFrame f) {
    last_seq = f.seq;
    last_reply_wire = encode_frame(f);
    have_reply = true;
    chan.send_frame(proxy, last_reply_wire);
  };

  std::uint32_t xid = 1;
  for (;;) {
    auto rcv = chan.recv_frame(cfg.heartbeat_interval_ms);
    if (!rcv) {
      if (rcv.error().code == Error::Code::kTimeout) {
        chan.send_frame(proxy, encode_frame({RpcType::kHeartbeat, 0, {}}));
        continue;
      }
      _exit(73);
    }
    auto fr = decode_frame(rcv.value().frame);
    if (!fr) continue; // malformed; ignore
    const RpcFrame& req = fr.value();
    const bool is_request = req.type == RpcType::kDeliverEvent ||
                            req.type == RpcType::kSnapshotRequest ||
                            req.type == RpcType::kRestoreRequest;
    if (is_request && have_reply) {
      if (req.seq == last_seq) {
        chan.send_frame(proxy, last_reply_wire);
        continue;
      }
      if (req.seq < last_seq) continue; // ancient retransmit; superseded
    }
    switch (req.type) {
      case RpcType::kDeliverEvent: {
        auto del = decode_deliver(req.payload);
        if (!del) {
          chan.send_frame(proxy, encode_frame({RpcType::kCrashNotice, req.seq,
                                               {}}));
          _exit(74);
        }
        EventDonePayload done;
        try {
          CollectingServiceApi api(SimTime{del.value().now_ns}, &xid);
          done.disposition = app.handle_event(del.value().event, api);
          done.emitted = std::move(api).take();
        } catch (const ctl::AppCrash& crash) {
          // Real fail-stop: tell the proxy our last words, then die hard.
          const std::string what = crash.what();
          std::vector<std::uint8_t> payload(what.begin(), what.end());
          chan.send_frame(proxy,
                          encode_frame({RpcType::kCrashNotice, req.seq, payload}));
          _exit(134); // mimic SIGABRT's exit status
        }
        reply({RpcType::kEventDone, req.seq, encode_event_done(done)});
        break;
      }
      case RpcType::kSnapshotRequest: {
        reply({RpcType::kSnapshotReply, req.seq, app.snapshot_state()});
        break;
      }
      case RpcType::kRestoreRequest: {
        app.reset();
        app.restore_state(req.payload);
        reply({RpcType::kRestoreAck, req.seq, {}});
        break;
      }
      case RpcType::kShutdown:
        _exit(0);
      default:
        break; // proxy-bound frame types never arrive here
    }
  }
}

// ---------------------------------------------------------------------------
// Proxy (parent side)
// ---------------------------------------------------------------------------

ProcessDomain::ProcessDomain(ctl::AppPtr app, Config cfg)
    : app_(std::move(app)), cfg_(cfg), chan_(make_channel(cfg.faults)) {}

ProcessDomain::~ProcessDomain() { shutdown(); }

Status ProcessDomain::start() {
  if (auto st = chan_->open(); !st) return st;
  return spawn();
}

Status ProcessDomain::spawn() {
  const pid_t pid = ::fork();
  if (pid < 0) return Error{Error::Code::kIo, "fork: " + std::string(strerror(errno))};
  if (pid == 0) {
    // Child: drop the proxy's socket, run the stub forever.
    const std::uint16_t proxy_port = chan_->local_port();
    chan_->close();
    run_stub(*app_, proxy_port, cfg_);
    // not reached
  }
  child_pid_ = pid;
  // Handshake: wait for the stub's Register.
  const auto deadline_ms = cfg_.rpc_timeout_ms;
  auto rcv = chan_->recv_frame(deadline_ms);
  while (rcv) {
    auto fr = decode_frame(rcv.value().frame);
    if (fr && fr.value().type == RpcType::kRegister) {
      stub_addr_ = rcv.value().from;
      chan_->send_frame(stub_addr_, encode_frame({RpcType::kRegisterAck, 0, {}}));
      alive_ = true;
      return Status::success();
    }
    rcv = chan_->recv_frame(deadline_ms);
  }
  kill_child();
  return Error{Error::Code::kTimeout, "stub did not register"};
}

bool ProcessDomain::child_exited() {
  if (child_pid_ <= 0) return true;
  int status = 0;
  const pid_t r = ::waitpid(child_pid_, &status, WNOHANG);
  if (r == child_pid_) {
    child_pid_ = -1;
    return true;
  }
  return false;
}

void ProcessDomain::kill_child() {
  if (child_pid_ > 0) {
    ::kill(child_pid_, SIGKILL);
    int status = 0;
    ::waitpid(child_pid_, &status, 0);
    child_pid_ = -1;
  }
  alive_ = false;
}

Result<RpcFrame> ProcessDomain::call(RpcType req, std::span<const std::uint8_t> payload,
                                     RpcType expect, int timeout_ms) {
  if (!alive_ || !stub_addr_.valid())
    return Error{Error::Code::kCrashed, "stub not running"};
  const std::uint64_t seq = next_seq_++;
  std::vector<std::uint8_t> p(payload.begin(), payload.end());
  const std::vector<std::uint8_t> wire = encode_frame({req, seq, std::move(p)});
  tstats_.rpc_calls += 1;
  const auto t0 = std::chrono::steady_clock::now();
  if (auto st = chan_->send_frame(stub_addr_, wire); !st) return st.error();

  const auto deadline = t0 + std::chrono::milliseconds(timeout_ms);
  double attempt_ms = std::max(1, cfg_.retry_initial_timeout_ms);
  auto attempt_deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double, std::milli>(attempt_ms));
  int retransmits = 0;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // Deadline passed with retries exhausted: either the child died or it
      // is wedged. Both are failures from the proxy's perspective; a wedged
      // child is killed. Transport flakes never reach this point — they were
      // absorbed by the retransmits below.
      tstats_.rpc_timeouts += 1;
      tstats_.channel = chan_->stats();
      if (child_exited()) {
        alive_ = false;
        return Error{Error::Code::kCrashed, last_crash_info_.empty()
                                                ? "stub process died"
                                                : last_crash_info_};
      }
      kill_child();
      return Error{Error::Code::kTimeout, "stub unresponsive; killed"};
    }
    if (now >= attempt_deadline && retransmits < cfg_.retry_max) {
      // Transport flake suspected: the request or its reply may have been
      // lost. The child still being alive distinguishes this from a crash.
      if (child_exited()) {
        alive_ = false;
        tstats_.channel = chan_->stats();
        return Error{Error::Code::kCrashed, last_crash_info_.empty()
                                                ? "stub process died"
                                                : last_crash_info_};
      }
      chan_->send_frame(stub_addr_, wire); // same seq: the stub dedups
      retransmits += 1;
      tstats_.retransmits += 1;
      attempt_ms *= std::max(1.0, cfg_.retry_backoff);
      attempt_deadline =
          now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(attempt_ms));
    }
    const auto wait_until = retransmits < cfg_.retry_max
                                ? std::min(deadline, attempt_deadline)
                                : deadline;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          wait_until - std::chrono::steady_clock::now())
                          .count();
    auto rcv = chan_->recv_frame(static_cast<int>(std::max<long long>(left, 1)));
    if (!rcv) {
      if (rcv.error().code == Error::Code::kTimeout) continue; // retry/deadline
      return rcv.error();
    }
    auto fr = decode_frame(rcv.value().frame);
    if (!fr) continue;
    RpcFrame f = std::move(fr).value();
    if (f.type == RpcType::kHeartbeat) {
      last_heartbeat_ = std::chrono::steady_clock::now();
      continue;
    }
    if (f.type == RpcType::kRegister) {
      // Our RegisterAck was lost and the stub is still re-sending Register;
      // ack again or it will give up and exit.
      chan_->send_frame(stub_addr_, encode_frame({RpcType::kRegisterAck, 0, {}}));
      continue;
    }
    if (f.type == RpcType::kCrashNotice) {
      last_crash_info_.assign(f.payload.begin(), f.payload.end());
      // Let the child finish dying, then reap it.
      for (int i = 0; i < 100 && !child_exited(); ++i) ::usleep(1000);
      if (!child_exited()) kill_child();
      alive_ = false;
      tstats_.channel = chan_->stats();
      return Error{Error::Code::kCrashed, last_crash_info_};
    }
    if (f.type == expect && f.seq == seq) {
      if (retransmits > 0) tstats_.flakes_recovered += 1;
      tstats_.rtt_us.add(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
      tstats_.channel = chan_->stats();
      return f;
    }
    // Stale reply from a previous request (or a duplicate of one); skip.
  }
}

bool ProcessDomain::poll_liveness() {
  if (!alive_) return false;
  // Reap a silently-dead child first (e.g. killed by the OOM killer).
  if (child_exited()) {
    alive_ = false;
    if (last_crash_info_.empty()) last_crash_info_ = "stub process died";
    return false;
  }
  // Drain whatever the stub pushed since we last listened.
  for (;;) {
    auto rcv = chan_->recv_frame(/*timeout_ms=*/1);
    if (!rcv) break; // timeout: queue drained
    auto fr = decode_frame(rcv.value().frame);
    if (!fr) continue;
    if (fr.value().type == RpcType::kHeartbeat) {
      last_heartbeat_ = std::chrono::steady_clock::now();
      continue;
    }
    if (fr.value().type == RpcType::kRegister) {
      chan_->send_frame(stub_addr_, encode_frame({RpcType::kRegisterAck, 0, {}}));
      continue;
    }
    if (fr.value().type == RpcType::kCrashNotice) {
      last_crash_info_.assign(fr.value().payload.begin(), fr.value().payload.end());
      for (int i = 0; i < 100 && !child_exited(); ++i) ::usleep(1000);
      if (!child_exited()) kill_child();
      alive_ = false;
      return false;
    }
    // Stale reply from an abandoned request: ignore.
  }
  return alive_;
}

long ProcessDomain::ms_since_heartbeat() const {
  if (last_heartbeat_.time_since_epoch().count() == 0) return -1;
  return static_cast<long>(std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - last_heartbeat_)
                               .count());
}

EventOutcome ProcessDomain::deliver(const ctl::Event& event, SimTime now) {
  EventOutcome out;
  DeliverEventPayload payload{raw(now), event};
  auto reply = call(RpcType::kDeliverEvent, encode_deliver(payload),
                    RpcType::kEventDone, cfg_.deliver_timeout_ms);
  if (!reply) {
    out.kind = reply.error().code == Error::Code::kTimeout
                   ? EventOutcome::Kind::kTimeout
                   : EventOutcome::Kind::kCrashed;
    out.crash_info = reply.error().message;
    alive_ = false;
    return out;
  }
  auto done = decode_event_done(reply.value().payload);
  if (!done) {
    out.kind = EventOutcome::Kind::kCrashed;
    out.crash_info = "malformed event-done: " + done.error().message;
    return out;
  }
  out.disposition = done.value().disposition;
  out.emitted = std::move(done.value().emitted);
  return out;
}

Result<std::vector<std::uint8_t>> ProcessDomain::snapshot() {
  auto reply =
      call(RpcType::kSnapshotRequest, {}, RpcType::kSnapshotReply, cfg_.rpc_timeout_ms);
  if (!reply) return reply.error();
  return std::move(reply.value().payload);
}

Status ProcessDomain::restore(std::span<const std::uint8_t> state) {
  if (!alive_) {
    child_exited(); // reap
    if (child_pid_ > 0) kill_child();
    if (auto st = spawn(); !st) return st;
  }
  auto reply = call(RpcType::kRestoreRequest, state, RpcType::kRestoreAck,
                    cfg_.rpc_timeout_ms);
  if (!reply) return reply.error();
  return Status::success();
}

Status ProcessDomain::restart() {
  kill_child();
  child_exited();
  return spawn();
}

void ProcessDomain::shutdown() {
  if (alive_ && stub_addr_.valid() && chan_->is_open()) {
    chan_->send_frame(stub_addr_, encode_frame({RpcType::kShutdown, 0, {}}));
    for (int i = 0; i < 50 && !child_exited(); ++i) ::usleep(1000);
  }
  kill_child();
  chan_->close();
}

} // namespace legosdn::appvisor
