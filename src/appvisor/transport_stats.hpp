// Transport-layer observability for the AppVisor proxy <-> stub link.
//
// ChannelStats counts what the UdpChannel saw at the datagram/chunk level;
// TransportStats adds the RPC layer (retransmits, recovered flakes, deadline
// exhaustions) plus a round-trip-time histogram. ProcessDomain keeps one
// TransportStats per domain; AppVisor and LegoController aggregate them so an
// operator can tell a lossy channel apart from a crashing app.
#pragma once

#include <cstdint>

#include "common/stats.hpp"

namespace legosdn::appvisor {

/// Chunk-level counters kept by UdpChannel.
struct ChannelStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t chunks_sent = 0;         ///< datagrams actually written
  std::uint64_t chunks_received = 0;     ///< datagrams accepted (not runt/malformed)
  std::uint64_t dup_chunks_dropped = 0;  ///< retransmitted chunk of the in-flight frame
  std::uint64_t stale_chunks_dropped = 0;///< straggler of an already-completed frame
  std::uint64_t reassembly_aborts = 0;   ///< partial frame evicted by a newer frame

  ChannelStats& operator+=(const ChannelStats& o) {
    frames_sent += o.frames_sent;
    frames_received += o.frames_received;
    chunks_sent += o.chunks_sent;
    chunks_received += o.chunks_received;
    dup_chunks_dropped += o.dup_chunks_dropped;
    stale_chunks_dropped += o.stale_chunks_dropped;
    reassembly_aborts += o.reassembly_aborts;
    return *this;
  }
};

/// RPC-level counters kept by ProcessDomain (proxy side).
struct TransportStats {
  ChannelStats channel;                 ///< the proxy-side channel's counters
  std::uint64_t rpc_calls = 0;
  std::uint64_t retransmits = 0;        ///< request frames re-sent after a silent attempt
  std::uint64_t flakes_recovered = 0;   ///< calls that succeeded after >=1 retransmit
  std::uint64_t rpc_timeouts = 0;       ///< calls that exhausted the overall deadline
  LatencyHistogram rtt_us;              ///< request send -> matching reply

  TransportStats& operator+=(const TransportStats& o) {
    channel += o.channel;
    rpc_calls += o.rpc_calls;
    retransmits += o.retransmits;
    flakes_recovered += o.flakes_recovered;
    rpc_timeouts += o.rpc_timeouts;
    rtt_us.merge(o.rtt_us);
    return *this;
  }
};

} // namespace legosdn::appvisor
