#include "appvisor/appvisor.hpp"

namespace legosdn::appvisor {

AppId AppVisor::add_app(ctl::AppPtr app, Backend backend, ProcessDomain::Config cfg,
                        int shard) {
  DomainPtr domain;
  switch (backend) {
    case Backend::kInProcess:
      domain = std::make_unique<InProcessDomain>(std::move(app));
      break;
    case Backend::kProcess:
      domain = std::make_unique<ProcessDomain>(std::move(app), cfg);
      break;
  }
  return add_domain(std::move(domain), shard);
}

AppId AppVisor::add_domain(DomainPtr domain, int shard) {
  AppEntry e;
  e.id = AppId{static_cast<std::uint32_t>(entries_.size() + 1)};
  for (ctl::EventType t : domain->subscriptions())
    e.subscribed[static_cast<std::size_t>(t)] = true;
  e.domain = std::move(domain);
  e.shard = shard;
  entries_.push_back(std::move(e));
  return entries_.back().id;
}

Status AppVisor::start_all() {
  for (auto& e : entries_) {
    if (auto st = e.domain->start(); !st) return st;
  }
  return Status::success();
}

void AppVisor::shutdown_all() {
  for (auto& e : entries_) e.domain->shutdown();
}

AppEntry* AppVisor::entry(AppId id) {
  for (auto& e : entries_)
    if (e.id == id) return &e;
  return nullptr;
}

TransportStats AppVisor::transport_stats() const {
  TransportStats total;
  for (const auto& e : entries_) {
    if (const TransportStats* ts = e.domain->transport_stats()) total += *ts;
  }
  return total;
}

std::vector<AppEntry*> AppVisor::subscribers(ctl::EventType type) {
  std::vector<AppEntry*> out;
  const auto idx = static_cast<std::size_t>(type);
  for (auto& e : entries_)
    if (e.subscribed[idx]) out.push_back(&e);
  return out;
}

} // namespace legosdn::appvisor
