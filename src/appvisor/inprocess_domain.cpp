#include "appvisor/inprocess_domain.hpp"

namespace legosdn::appvisor {

EventOutcome InProcessDomain::deliver(const ctl::Event& event, SimTime now) {
  EventOutcome out;
  if (!alive_) {
    out.kind = EventOutcome::Kind::kCrashed;
    out.crash_info = "domain not alive";
    return out;
  }
  CollectingServiceApi api(now, &xid_);
  try {
    out.disposition = app_->handle_event(event, api);
    out.emitted = std::move(api).take();
  } catch (const ctl::AppCrash& crash) {
    // The fault boundary: the crash is contained here and the app is marked
    // dead until restore()/restart(). Its partial output is discarded —
    // NetLog never sees messages from a failed handler.
    alive_ = false;
    out.kind = EventOutcome::Kind::kCrashed;
    out.crash_info = crash.what();
  }
  return out;
}

Result<std::vector<std::uint8_t>> InProcessDomain::snapshot() {
  if (!alive_)
    return Error{Error::Code::kCrashed, "cannot snapshot a dead app"};
  return app_->snapshot_state();
}

Status InProcessDomain::restore(std::span<const std::uint8_t> state) {
  // Reviving an in-process app = reset + state install (the analogue of
  // re-spawning the process and handing it the CRIU image).
  app_->reset();
  app_->restore_state(state);
  alive_ = true;
  return Status::success();
}

Status InProcessDomain::restart() {
  app_->reset();
  alive_ = true;
  return Status::success();
}

} // namespace legosdn::appvisor
