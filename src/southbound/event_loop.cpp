#include "southbound/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>

namespace legosdn::southbound {

EventLoop::EventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epfd_ >= 0 && wake_fd_ >= 0) {
    ::epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epfd_ >= 0) ::close(epfd_);
}

bool EventLoop::add(int fd, std::uint32_t events, IoFn fn) {
  ::epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = std::make_shared<IoFn>(std::move(fn));
  return true;
}

bool EventLoop::modify(int fd, std::uint32_t events) {
  ::epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::remove(int fd) {
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

int EventLoop::poll(int timeout_ms) {
  std::array<::epoll_event, 256> events;
  int n;
  do {
    n = ::epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                     timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return 0;

  int handled = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t junk;
      while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
      }
      continue;
    }
    // Re-look up per event: an earlier callback in this batch may have
    // removed this fd (peer reset tears down its neighbour's conn, etc.).
    // Level-triggered semantics make the residual fd-reuse race benign — a
    // spurious callback reads EAGAIN and returns.
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    auto fn = it->second; // keep alive across self-removal
    (*fn)(events[i].events);
    ++handled;
  }
  return handled;
}

void EventLoop::wakeup() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

} // namespace legosdn::southbound
