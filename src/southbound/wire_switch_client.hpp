// Switch-side OF 1.0 endpoint over a real loopback socket.
//
// Fronts a simulated switch (or a synthetic one, in benches) toward an
// OFServer: answers the controller's handshake (HELLO, FEATURES_REQUEST)
// and ECHO probes itself, hands every other controller->switch message to
// the downcall, and sends switch-originated messages (packet-in,
// flow-removed, ...) up the wire. Nonblocking connect: registration with
// the shared EventLoop completes the three-way handshake asynchronously,
// so thousands of clients can storm a server from one thread.
//
// Single-threaded: all methods run on the thread pumping the EventLoop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.hpp"
#include "openflow/wire10.hpp"
#include "southbound/event_loop.hpp"
#include "southbound/of_connection.hpp"

namespace legosdn::southbound {

class WireSwitchClient {
public:
  struct Config {
    DatapathId dpid{};
    of::FeaturesReply features{}; ///< sent verbatim in the handshake
    OFConnection::Limits limits{};
  };

  /// Receives every decoded controller->switch message that is not part of
  /// the session protocol (flow-mod, packet-out, stats-request, ...).
  using DowncallFn = std::function<void(const of::Message& msg)>;

  WireSwitchClient(EventLoop& loop, Config cfg, DowncallFn downcall);
  ~WireSwitchClient();

  WireSwitchClient(const WireSwitchClient&) = delete;
  WireSwitchClient& operator=(const WireSwitchClient&) = delete;

  /// Begin a nonblocking connect; the handshake completes over subsequent
  /// loop polls. Reconnecting after disconnect() is allowed.
  Status connect(const std::string& addr, std::uint16_t port);

  void disconnect();

  bool connected() const noexcept { return conn_ != nullptr; }
  /// Handshake done from this side (FEATURES_REPLY sent).
  bool ready() const noexcept { return ready_; }

  /// Send a switch-originated message to the controller.
  bool send(const of::Message& msg);

  DatapathId dpid() const noexcept { return cfg_.dpid; }

  struct Stats {
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t echo_replies = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t downcalls = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

private:
  void on_io(std::uint32_t events);
  void handle_frame(std::span<const std::uint8_t> frame);
  void enqueue(const of::Message& msg);
  void service_out();
  void teardown();

  EventLoop& loop_;
  Config cfg_;
  DowncallFn downcall_;
  std::unique_ptr<OFConnection> conn_;
  bool connecting_ = false; ///< TCP connect still in flight
  bool ready_ = false;
  bool want_writable_ = false;
  std::uint32_t next_xid_ = 1;
  Stats stats_;
};

} // namespace legosdn::southbound
