// Runs an existing Network + Controller deployment over real loopback
// sockets: one WireSwitchClient per simulated switch connects to an
// OFServer, and every control-plane message crosses genuine kernel TCP as
// spec-faithful OF 1.0 bytes.
//
//   Network northbound  -> client.send() ----wire---> server -> ctl::Event
//   Controller::send()  -> server.send() ----wire---> client -> Network
//   NetLog::forward()   -> server.send() ----wire---> client -> Network
//
// Determinism: everything is pumped synchronously from one thread
// (settle()), so a scenario run over sockets produces the same NetLog
// commit stats and per-switch logical digests as the in-process adapter
// path — that equivalence is the differential oracle in southbound_test.
//
// Keepalive is disabled by default here: scenario time is virtual, and a
// wall-clock idle timeout would disconnect switches in slow (sanitized)
// runs of long scripts.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "controller/controller.hpp"
#include "netlog/netlog.hpp"
#include "southbound/of_server.hpp"
#include "southbound/wire_switch_client.hpp"

namespace legosdn::southbound {

class SouthboundBridge {
public:
  struct Config {
    OFServerConfig server{};
    Config() {
      server.echo_interval_ms = 0;
      server.idle_timeout_ms = 0;
    }
  };

  /// Installs network + controller hooks. The bridge must outlive neither:
  /// destroy it before the controller and network it fronts.
  SouthboundBridge(netsim::Network& net, ctl::Controller& controller,
                   Config cfg = {});
  ~SouthboundBridge();

  SouthboundBridge(const SouthboundBridge&) = delete;
  SouthboundBridge& operator=(const SouthboundBridge&) = delete;

  /// Bind the server and wire up all callbacks. Call before the
  /// controller's start()/start_system().
  Status start();

  /// LegoSDN mode: route NetLog-forwarded messages (transaction commits and
  /// rollback inverses) over the wire too.
  void attach_netlog(netlog::NetLog& nl);

  /// Replicated failover: point the bridge at a different controller (the
  /// promoted follower). Reinstalls the controller-side hooks (southbound,
  /// announcer) on the new controller; the socket-side callbacks route
  /// through the bridge's controller pointer, so existing connections carry
  /// over untouched. Call before the follower's promote_to_leader() so its
  /// deferred-announcement start() re-announces over surviving connections.
  /// Re-attach_netlog() the new controller's NetLog separately.
  void retarget(ctl::Controller& controller);

  /// Promotion's attach_network_callbacks() grabs the network's northbound +
  /// switch-state callbacks for the in-process adapter path; a wire
  /// deployment calls this afterwards to take them back.
  void reattach_network_hooks();

  /// Outermost wrapper around every controller->switch delivery into the
  /// network (before the NetLog world lock). Lego mode installs the
  /// controller's transaction write gate here so the pump cannot mutate
  /// switch state while a verifying transaction reads tables network-wide.
  void set_delivery_gate(std::function<void(const std::function<void()>&)> g) {
    delivery_gate_ = std::move(g);
  }

  /// Pump server + clients + controller until fully quiescent: no socket
  /// readable/writable, no pending frames, no undispatched events.
  void settle();

  std::uint16_t port() const noexcept { return server_.port(); }
  OFServer& server() noexcept { return server_; }

  struct Stats {
    std::uint64_t northbound_dropped = 0; ///< no ready client for the dpid
    std::uint64_t southbound_dropped = 0; ///< no ready connection at server
  };
  const Stats& stats() const noexcept { return stats_; }

private:
  int pump();
  void connect_one(DatapathId dpid);
  void drop_one(DatapathId dpid);
  void announce();
  void deliver_to_network(const of::Message& msg);

  netsim::Network& net_;
  ctl::Controller* controller_; ///< never null; retarget() repoints it
  Config cfg_;
  netlog::NetLog* netlog_ = nullptr; ///< set by attach_netlog (lego mode)
  std::function<void(const std::function<void()>&)> delivery_gate_;
  OFServer server_;
  EventLoop client_loop_;
  std::unordered_map<DatapathId, std::unique_ptr<WireSwitchClient>> clients_;
  Stats stats_;
};

} // namespace legosdn::southbound
