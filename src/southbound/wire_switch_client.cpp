#include "southbound/wire_switch_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace legosdn::southbound {

WireSwitchClient::WireSwitchClient(EventLoop& loop, Config cfg, DowncallFn downcall)
    : loop_(loop), cfg_(std::move(cfg)), downcall_(std::move(downcall)) {}

WireSwitchClient::~WireSwitchClient() { disconnect(); }

Status WireSwitchClient::connect(const std::string& addr, std::uint16_t port) {
  disconnect();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error{Error::Code::kIo, "socket: " + std::string(strerror(errno))};
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  ::sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return Error{Error::Code::kParse, "bad address " + addr};
  }
  const int rc = ::connect(fd, reinterpret_cast<::sockaddr*>(&sa), sizeof(sa));
  if (rc != 0 && errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    return Error{Error::Code::kIo, "connect: " + std::string(strerror(err))};
  }
  conn_ = std::make_unique<OFConnection>(fd, cfg_.limits);
  connecting_ = rc != 0;
  // While connecting, EPOLLOUT signals completion; after that, reads drive.
  loop_.add(fd, connecting_ ? EPOLLOUT : (EPOLLIN | EPOLLRDHUP),
            [this](std::uint32_t events) { on_io(events); });
  return Status::success();
}

void WireSwitchClient::disconnect() {
  if (!conn_) return;
  loop_.remove(conn_->fd());
  conn_->close();
  teardown();
}

void WireSwitchClient::teardown() {
  conn_.reset();
  connecting_ = false;
  ready_ = false;
  want_writable_ = false;
}

bool WireSwitchClient::send(const of::Message& msg) {
  if (!conn_ || conn_->closed()) return false;
  enqueue(msg);
  service_out();
  return true;
}

void WireSwitchClient::enqueue(const of::Message& msg) {
  auto bytes = of::wire10::encode(msg);
  if (!bytes) return;
  conn_->enqueue(std::span<const std::uint8_t>(bytes.value()));
  stats_.frames_out += 1;
}

void WireSwitchClient::service_out() {
  if (!conn_ || conn_->closed() || connecting_) return;
  if (conn_->pending_out() > 0 &&
      conn_->flush() == OFConnection::IoStatus::kError) {
    disconnect();
    return;
  }
  const bool want = conn_->pending_out() > 0;
  if (want != want_writable_) {
    want_writable_ = want;
    loop_.modify(conn_->fd(),
                 EPOLLIN | EPOLLRDHUP | (want ? std::uint32_t{EPOLLOUT} : 0U));
  }
}

void WireSwitchClient::on_io(std::uint32_t events) {
  if (!conn_) return;
  if (connecting_) {
    int err = 0;
    ::socklen_t len = sizeof(err);
    ::getsockopt(conn_->fd(), SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0 || (events & (EPOLLHUP | EPOLLERR))) {
      disconnect();
      return;
    }
    connecting_ = false;
    loop_.modify(conn_->fd(), EPOLLIN | EPOLLRDHUP);
    service_out(); // anything queued while the connect was in flight
    return;
  }
  if (events & (EPOLLHUP | EPOLLERR)) {
    disconnect();
    return;
  }
  if (events & EPOLLOUT) service_out();
  if (!conn_) return;
  if (events & (EPOLLIN | EPOLLRDHUP)) {
    const auto st = conn_->read_frames(
        [this](std::span<const std::uint8_t> f) { handle_frame(f); });
    if (!conn_) return; // a downcall disconnected us
    if (st == OFConnection::IoStatus::kPeerClosed ||
        st == OFConnection::IoStatus::kError ||
        st == OFConnection::IoStatus::kProtocol) {
      disconnect();
      return;
    }
    service_out();
  }
}

void WireSwitchClient::handle_frame(std::span<const std::uint8_t> frame) {
  auto decoded = of::wire10::decode(frame, cfg_.dpid);
  stats_.frames_in += 1;
  if (!decoded) {
    stats_.decode_errors += 1;
    return;
  }
  of::Message msg = std::move(decoded).value();

  if (msg.is<of::Hello>()) {
    // Answer the controller's HELLO with ours; version agreement is implicit
    // (both sides only speak 0x01).
    enqueue({next_xid_++, of::Hello{}});
    return;
  }
  if (msg.is<of::FeaturesRequest>()) {
    of::FeaturesReply reply = cfg_.features;
    reply.dpid = cfg_.dpid;
    enqueue({msg.xid, std::move(reply)});
    ready_ = true;
    return;
  }
  if (const auto* er = msg.get_if<of::EchoRequest>()) {
    enqueue({msg.xid, of::EchoReply{er->payload}});
    stats_.echo_replies += 1;
    return;
  }
  if (msg.is<of::EchoReply>()) return;

  stats_.downcalls += 1;
  if (downcall_) downcall_(msg);
}

} // namespace legosdn::southbound
