#include "southbound/of_connection.hpp"

#include <cerrno>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace legosdn::southbound {

OFConnection::OFConnection(int fd, Limits limits) : fd_(fd), limits_(limits) {}

OFConnection::~OFConnection() {
  if (!closed_) ::close(fd_);
}

void OFConnection::close() {
  std::lock_guard<std::mutex> lk(out_mu_);
  if (closed_) return;
  closed_ = true;
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
}

OFConnection::IoStatus OFConnection::read_frames(const FrameFn& on_frame) {
  if (closed_) return IoStatus::kError;
  std::size_t read_this_pass = 0;
  bool saw_eof = false;

  while (read_this_pass < limits_.max_read_per_pass) {
    ::iovec iov[2];
    const int iovcnt = in_.free_iovecs(limits_.read_chunk, iov);
    const ssize_t n = ::readv(fd_, iov, iovcnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return IoStatus::kError;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    in_.commit(static_cast<std::size_t>(n));
    read_this_pass += static_cast<std::size_t>(n);
    stats_.bytes_in += static_cast<std::uint64_t>(n);
    if (static_cast<std::size_t>(n) < limits_.read_chunk) break; // drained
  }

  // Extract every complete frame. peek_frame validates the length field, so
  // a runt (len < 8) or oversized length tears the connection down instead
  // of spinning or desynchronizing the stream.
  for (;;) {
    std::uint8_t hdr[4];
    if (in_.size() < 4) break;
    in_.peek(hdr, 4);
    std::size_t len = 0;
    const auto st = of::wire10::peek_frame(std::span<const std::uint8_t>(hdr, 4),
                                           &len, limits_.max_frame);
    if (st == of::wire10::FrameStatus::kBad) return IoStatus::kProtocol;
    // A 4-byte peek validates only the length field (kNeedMore there means
    // the body extends past the header); completeness is the ring's size.
    len = (std::size_t{hdr[2]} << 8) | hdr[3]; // validated >= kHeaderLen above
    if (in_.size() < len) break;
    const auto frame = in_.view(len, frame_scratch_);
    stats_.frames_in += 1;
    on_frame(frame);
    in_.consume(len);
    if (closed_) return IoStatus::kOk; // handler tore us down (protocol error)
  }

  return saw_eof ? IoStatus::kPeerClosed : IoStatus::kOk;
}

bool OFConnection::enqueue(std::span<const std::uint8_t> frame) {
  std::lock_guard<std::mutex> lk(out_mu_);
  if (closed_) return false;
  out_.append(frame);
  frames_enqueued_ += 1;
  return true;
}

OFConnection::IoStatus OFConnection::flush() {
  std::lock_guard<std::mutex> lk(out_mu_);
  if (closed_) return IoStatus::kError;
  stats_.frames_out = frames_enqueued_;
  while (!out_.empty()) {
    ::iovec iov[2];
    const int iovcnt = out_.data_iovecs(iov);
    const ssize_t n = ::writev(fd_, iov, iovcnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
      return IoStatus::kError;
    }
    out_.consume(static_cast<std::size_t>(n));
    stats_.bytes_out += static_cast<std::uint64_t>(n);
  }
  return IoStatus::kOk;
}

std::size_t OFConnection::pending_out() const {
  std::lock_guard<std::mutex> lk(out_mu_);
  return out_.size();
}

} // namespace legosdn::southbound
