// Level-triggered epoll reactor.
//
// One loop multiplexes the listening socket plus every connection socket of
// an OFServer (or the client sockets of a WireSwitchClient fleet). poll()
// runs on exactly one thread; other threads may only call wakeup(), which
// pokes an eventfd so a blocking poll() returns and the owner can sweep
// cross-thread work (e.g. frames enqueued by dispatcher lanes).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

namespace legosdn::southbound {

class EventLoop {
public:
  /// Called with the ready epoll event mask (EPOLLIN | EPOLLOUT | ...).
  using IoFn = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool valid() const noexcept { return epfd_ >= 0; }

  /// Register `fd` for `events`. The callback may add/remove fds freely,
  /// including removing its own fd mid-dispatch.
  bool add(int fd, std::uint32_t events, IoFn fn);
  bool modify(int fd, std::uint32_t events);
  void remove(int fd);

  /// One dispatch pass: wait up to `timeout_ms` (0 = nonblocking, -1 =
  /// forever), run callbacks for every ready fd. Returns callbacks invoked.
  int poll(int timeout_ms);

  /// Thread-safe: interrupt a blocking poll().
  void wakeup();

  std::size_t watched() const noexcept { return handlers_.size(); }

private:
  int epfd_ = -1;
  int wake_fd_ = -1;
  // shared_ptr so a handler that removes its own registration (connection
  // teardown inside the callback) doesn't free the lambda it is running in.
  std::unordered_map<int, std::shared_ptr<IoFn>> handlers_;
};

} // namespace legosdn::southbound
