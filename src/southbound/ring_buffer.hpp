// Growable byte ring for the southbound socket layer.
//
// Each OF connection owns two of these: the receive ring reassembles frames
// across partial reads, the send ring coalesces outbound frames so one
// writev() flushes a whole batch. Contents and free space are exposed as
// at-most-two iovec spans, so socket I/O runs scatter/gather without ever
// linearizing the ring.
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace legosdn::southbound {

class RingBuffer {
public:
  explicit RingBuffer(std::size_t initial_capacity = 4096)
      : buf_(initial_capacity ? initial_capacity : 1) {}

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return buf_.size(); }
  std::size_t free_space() const noexcept { return buf_.size() - size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Grow (doubling) until at least `n` bytes are free.
  void ensure_free(std::size_t n) {
    if (free_space() >= n) return;
    std::size_t cap = buf_.size();
    while (cap - size_ < n) cap *= 2;
    relinearize(cap);
  }

  /// Append bytes (copies; for encoded frames landing on the send ring).
  void append(std::span<const std::uint8_t> data) {
    ensure_free(data.size());
    const std::size_t tail = (head_ + size_) % buf_.size();
    const std::size_t first = std::min(data.size(), buf_.size() - tail);
    std::memcpy(buf_.data() + tail, data.data(), first);
    if (first < data.size())
      std::memcpy(buf_.data(), data.data() + first, data.size() - first);
    size_ += data.size();
  }

  /// Expose free space as up to two iovecs for readv(). Call ensure_free()
  /// first; returns the iovec count (0 when completely full).
  int free_iovecs(std::size_t want, ::iovec iov[2]) {
    ensure_free(want);
    const std::size_t avail = std::min(want, free_space());
    if (avail == 0) return 0;
    const std::size_t tail = (head_ + size_) % buf_.size();
    const std::size_t first = std::min(avail, buf_.size() - tail);
    iov[0] = {buf_.data() + tail, first};
    if (first == avail) return 1;
    iov[1] = {buf_.data(), avail - first};
    return 2;
  }

  /// Account for `n` bytes the kernel deposited into free_iovecs() space.
  void commit(std::size_t n) { size_ += n; }

  /// Expose contents as up to two iovecs for writev().
  int data_iovecs(::iovec iov[2]) const {
    if (size_ == 0) return 0;
    const std::size_t first = std::min(size_, buf_.size() - head_);
    iov[0] = {const_cast<std::uint8_t*>(buf_.data()) + head_, first};
    if (first == size_) return 1;
    iov[1] = {const_cast<std::uint8_t*>(buf_.data()), size_ - first};
    return 2;
  }

  /// Copy `n` bytes from the front (without consuming) into `dst`.
  void peek(std::uint8_t* dst, std::size_t n) const {
    const std::size_t first = std::min(n, buf_.size() - head_);
    std::memcpy(dst, buf_.data() + head_, first);
    if (first < n) std::memcpy(dst + first, buf_.data(), n - first);
  }

  /// Contiguous view of the first `n` bytes. Usually zero-copy; when the
  /// range wraps, it is linearized into `scratch` first.
  std::span<const std::uint8_t> view(std::size_t n,
                                     std::vector<std::uint8_t>& scratch) const {
    if (buf_.size() - head_ >= n) return {buf_.data() + head_, n};
    scratch.resize(n);
    peek(scratch.data(), n);
    return {scratch.data(), n};
  }

  /// Drop `n` bytes from the front.
  void consume(std::size_t n) {
    head_ = (head_ + n) % buf_.size();
    size_ -= n;
    if (size_ == 0) head_ = 0; // free reset keeps views contiguous
  }

private:
  void relinearize(std::size_t new_cap) {
    std::vector<std::uint8_t> next(new_cap);
    peek(next.data(), size_);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

} // namespace legosdn::southbound
