#include "southbound/of_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace legosdn::southbound {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

OFServer::OFServer() = default;

OFServer::~OFServer() { close(); }

std::uint64_t OFServer::now_ms() const {
  return cfg_.now_ms ? cfg_.now_ms() : steady_ms();
}

Status OFServer::listen(OFServerConfig cfg, EventFn on_event) {
  if (!loop_.valid()) return Error{Error::Code::kIo, "epoll unavailable"};
  if (listen_fd_ >= 0) return Error{Error::Code::kConflict, "already listening"};
  cfg_ = std::move(cfg);
  on_event_ = std::move(on_event);

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error{Error::Code::kIo, "socket: " + std::string(strerror(errno))};
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error{Error::Code::kParse, "bad bind address " + cfg_.bind_addr};
  }
  if (::bind(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Error{Error::Code::kIo, "bind: " + std::string(strerror(err))};
  }
  if (::listen(fd, cfg_.backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return Error{Error::Code::kIo, "listen: " + std::string(strerror(err))};
  }
  ::sockaddr_in bound{};
  ::socklen_t blen = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<::sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  last_sweep_ms_ = now_ms();
  loop_.add(listen_fd_, EPOLLIN, [this](std::uint32_t) { on_listen_ready(); });
  return Status::success();
}

void OFServer::on_listen_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return; // EAGAIN or transient accept error: wait for the next wave
    }
    if (conns_.size() >= cfg_.max_connections) {
      ::close(fd);
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.accept_overflow += 1;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (cfg_.sndbuf > 0)
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg_.sndbuf, sizeof(cfg_.sndbuf));

    auto c = std::make_shared<Conn>();
    c->io = std::make_unique<OFConnection>(fd, cfg_.limits);
    c->last_rx_ms = now_ms();
    conns_[fd] = c;
    loop_.add(fd, interest_of(*c),
              [this, fd](std::uint32_t events) { on_conn_io(fd, events); });
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.accepted += 1;
    }
    // Controller speaks first: HELLO opens the version negotiation.
    enqueue_msg(c, {c->next_xid++, of::Hello{}});
    work_ += 1;
  }
}

void OFServer::on_conn_io(int fd, std::uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  auto c = it->second;

  if (events & (EPOLLHUP | EPOLLERR)) {
    disconnect(c, true);
    return;
  }
  if (events & EPOLLOUT) {
    if (!service_out(c)) return;
  }
  if (events & (EPOLLIN | EPOLLRDHUP)) {
    // Wire batching: every complete frame this read pass decodes lands in
    // pending_batch_, delivered as one span per readable socket below.
    const bool batching = static_cast<bool>(on_batch_);
    if (batching) batch_open_ = true;
    const auto st = c->io->read_frames(
        [this, &c](std::span<const std::uint8_t> f) { handle_frame(c, f); });
    work_ += 1;
    if (batching) {
      batch_open_ = false;
      if (!pending_batch_.empty()) {
        std::vector<ctl::Event> batch;
        batch.swap(pending_batch_);
        {
          std::lock_guard<std::mutex> lk(stats_mu_);
          stats_.event_batches += 1;
        }
        on_batch_(std::move(batch));
      }
    }
    if (c->io->closed() || conns_.find(fd) == conns_.end())
      return; // a frame handler tore the connection down
    switch (st) {
      case OFConnection::IoStatus::kOk:
        break;
      case OFConnection::IoStatus::kProtocol: {
        {
          std::lock_guard<std::mutex> lk(stats_mu_);
          stats_.protocol_errors += 1;
        }
        disconnect(c, true);
        return;
      }
      case OFConnection::IoStatus::kPeerClosed:
      case OFConnection::IoStatus::kError:
        disconnect(c, true);
        return;
    }
    service_out(c); // replies enqueued by frame handlers
  }
}

void OFServer::handle_frame(const std::shared_ptr<Conn>& c,
                            std::span<const std::uint8_t> frame) {
  c->last_rx_ms = now_ms();
  auto decoded = of::wire10::decode(frame, c->dpid);
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.frames_in += 1;
    if (!decoded) stats_.decode_errors += 1;
  }
  if (!decoded) return; // unknown/garbled message: count it, keep the stream
  of::Message msg = std::move(decoded).value();

  // Liveness messages are state-independent.
  if (const auto* er = msg.get_if<of::EchoRequest>()) {
    enqueue_msg(c, {msg.xid, of::EchoReply{er->payload}});
    return;
  }
  if (msg.is<of::EchoReply>()) {
    c->echo_outstanding = false;
    return;
  }

  switch (c->state) {
    case HandshakeState::kAwaitHello: {
      if (!msg.is<of::Hello>()) {
        // Speaking before HELLO is a protocol violation (OF 1.0 §5.5.1).
        {
          std::lock_guard<std::mutex> lk(stats_mu_);
          stats_.protocol_errors += 1;
        }
        disconnect(c, false);
        return;
      }
      c->state = HandshakeState::kAwaitFeatures;
      enqueue_msg(c, {c->next_xid++, of::FeaturesRequest{}});
      return;
    }
    case HandshakeState::kAwaitFeatures: {
      const auto* fr = msg.get_if<of::FeaturesReply>();
      if (!fr) return; // e.g. retransmitted HELLO; keep waiting
      c->dpid = fr->dpid;
      c->state = HandshakeState::kSteady;
      std::shared_ptr<Conn> old;
      {
        std::lock_guard<std::mutex> lk(route_mu_);
        auto [it, inserted] = by_dpid_.try_emplace(c->dpid, c);
        if (!inserted) {
          old = it->second;
          it->second = c;
        }
        by_dpid_size_ = by_dpid_.size();
      }
      // A reconnecting switch replaces its stale connection (the common
      // takeover after an undetected half-open drop).
      if (old && old != c) disconnect(old, true);
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        stats_.handshakes += 1;
        stats_.events_out += 1;
      }
      emit_event(ctl::SwitchUp{c->dpid, *fr});
      return;
    }
    case HandshakeState::kSteady: {
      const bool is_event =
          msg.is<of::PacketIn>() || msg.is<of::PortStatus>() ||
          msg.is<of::FlowRemoved>() || msg.is<of::StatsReply>() ||
          msg.is<of::BarrierReply>() || msg.is<of::OfError>();
      if (!is_event) return; // hello retransmits etc. terminate here
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        stats_.events_out += 1;
      }
      std::visit(
          [&](auto&& m) {
            using T = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<T, of::PacketIn> ||
                          std::is_same_v<T, of::PortStatus> ||
                          std::is_same_v<T, of::FlowRemoved> ||
                          std::is_same_v<T, of::StatsReply> ||
                          std::is_same_v<T, of::BarrierReply> ||
                          std::is_same_v<T, of::OfError>) {
              emit_event(ctl::Event{std::move(m)});
            }
          },
          std::move(msg.body));
      return;
    }
  }
}

void OFServer::emit_event(ctl::Event e) {
  if (on_batch_) {
    if (batch_open_) {
      pending_batch_.push_back(std::move(e));
      return;
    }
    // Outside a read pass (e.g. idle-timeout SwitchDown from the timer
    // sweep): a batch of one keeps delivery uniform for the consumer.
    std::vector<ctl::Event> one;
    one.push_back(std::move(e));
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.event_batches += 1;
    }
    on_batch_(std::move(one));
    return;
  }
  if (on_event_) on_event_(std::move(e));
}

void OFServer::mark_dirty(const std::shared_ptr<Conn>& c, bool from_loop_thread) {
  bool first_dirty = false;
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    if (!c->in_dirty) {
      c->in_dirty = true;
      first_dirty = dirty_.empty();
      dirty_.push_back(c);
    }
  }
  if (from_loop_thread || !first_dirty) return;
  // Cross-thread empty->non-empty transition: the loop may be parked in
  // epoll_wait. One eventfd poke covers every further send until the loop
  // wakes and clears wake_pending_ — repeated transitions within one poll
  // cycle (the sweep empties the list mid-cycle) no longer re-signal.
  if (!wake_pending_.exchange(true, std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.wakeups += 1;
    }
    loop_.wakeup();
  }
}

void OFServer::enqueue_msg(const std::shared_ptr<Conn>& c, const of::Message& msg) {
  auto bytes = of::wire10::encode(msg);
  if (!bytes) return; // nothing in the handshake path is unencodable
  c->io->enqueue(std::span<const std::uint8_t>(bytes.value()));
  mark_dirty(c, /*from_loop_thread=*/true);
}

bool OFServer::service_out(const std::shared_ptr<Conn>& c) {
  if (c->io->closed() || conns_.find(c->io->fd()) == conns_.end()) return false;
  const std::size_t before = c->io->pending_out();
  if (before > 0) {
    if (c->io->flush() == OFConnection::IoStatus::kError) {
      disconnect(c, true);
      return false;
    }
    if (c->io->pending_out() < before) work_ += 1;
  }
  update_read_interest(c);
  return true;
}

std::uint32_t OFServer::interest_of(const Conn& c) const {
  std::uint32_t ev = EPOLLRDHUP;
  if (!c.reads_paused) ev |= EPOLLIN;
  if (c.want_writable) ev |= EPOLLOUT;
  return ev;
}

void OFServer::update_read_interest(const std::shared_ptr<Conn>& c) {
  const bool want_writable = c->io->pending_out() > 0;
  bool paused = c->reads_paused;
  if (!paused && c->io->should_pause_reads()) {
    paused = true;
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.reads_paused += 1;
  } else if (paused && c->io->should_resume_reads()) {
    paused = false;
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.reads_resumed += 1;
  }
  if (want_writable != c->want_writable || paused != c->reads_paused) {
    c->want_writable = want_writable;
    c->reads_paused = paused;
    loop_.modify(c->io->fd(), interest_of(*c));
  }
}

bool OFServer::send(DatapathId dpid, const of::Message& msg) {
  std::shared_ptr<Conn> c;
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    auto it = by_dpid_.find(dpid);
    if (it != by_dpid_.end()) c = it->second;
  }
  auto drop = [this] {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.sends_dropped += 1;
    return false;
  };
  if (!c || c->io->closed()) return drop();
  auto bytes = of::wire10::encode(msg);
  if (!bytes) return drop();
  if (!c->io->enqueue(std::span<const std::uint8_t>(bytes.value()))) return drop();
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.sends += 1;
  }
  // Per-conn buffering until the next flush sweep; at most one eventfd poke
  // per poll cycle (wake_pending_).
  mark_dirty(c, /*from_loop_thread=*/false);
  return true;
}

void OFServer::wakeup() { loop_.wakeup(); }

int OFServer::poll(int timeout_ms) {
  work_ = 0;
  work_ += loop_.poll(timeout_ms);
  // The loop is awake: the next cross-thread dirty transition needs a fresh
  // poke. Cleared before the sweep so a send landing mid-sweep re-signals.
  wake_pending_.store(false, std::memory_order_release);

  // Coalesced flush sweep: every connection that accumulated outbound
  // frames since the last pass gets one writev. The list is duplicate-free
  // (Conn::in_dirty), so no sort/dedup pass is needed; flags reset under the
  // same lock so a concurrent send() re-dirties for the *next* sweep.
  std::vector<std::shared_ptr<Conn>> dirty;
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    dirty.swap(dirty_);
    for (auto& c : dirty) c->in_dirty = false;
  }
  for (auto& c : dirty) service_out(c);

  const std::uint64_t now = now_ms();
  if (now - last_sweep_ms_ >= cfg_.timer_sweep_ms) {
    last_sweep_ms_ = now;
    sweep_timers();
  }
  return work_;
}

void OFServer::sweep_timers() {
  const std::uint64_t now = now_ms();
  std::vector<std::shared_ptr<Conn>> snapshot;
  snapshot.reserve(conns_.size());
  for (auto& [fd, c] : conns_) snapshot.push_back(c);
  for (auto& c : snapshot) {
    if (c->io->closed()) continue;
    const std::uint64_t idle = now - c->last_rx_ms;
    if (cfg_.idle_timeout_ms && idle >= cfg_.idle_timeout_ms) {
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        stats_.echo_timeouts += 1;
      }
      disconnect(c, true);
      work_ += 1;
      continue;
    }
    if (cfg_.echo_interval_ms && c->state == HandshakeState::kSteady &&
        !c->echo_outstanding && idle >= cfg_.echo_interval_ms) {
      c->echo_outstanding = true;
      c->echo_sent_ms = now;
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        stats_.echo_probes += 1;
      }
      enqueue_msg(c, {c->next_xid++, of::EchoRequest{now}});
      work_ += 1;
    }
  }
}

void OFServer::disconnect(const std::shared_ptr<Conn>& c, bool emit_switch_down) {
  const int fd = c->io->fd();
  auto it = conns_.find(fd);
  if (it == conns_.end() || it->second != c) return; // already gone
  conns_.erase(it);
  loop_.remove(fd);

  bool was_owner = false;
  {
    std::lock_guard<std::mutex> lk(route_mu_);
    auto r = by_dpid_.find(c->dpid);
    if (r != by_dpid_.end() && r->second == c) {
      by_dpid_.erase(r);
      was_owner = true;
    }
    by_dpid_size_ = by_dpid_.size();
  }
  // Fold the connection's I/O counters into the server totals before the
  // OFConnection goes away.
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.disconnects += 1;
    stats_.bytes_in += c->io->stats().bytes_in;
    stats_.bytes_out += c->io->stats().bytes_out;
  }
  c->io->close();
  work_ += 1;
  if (emit_switch_down && was_owner &&
      c->state == HandshakeState::kSteady && (on_event_ || on_batch_)) {
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.events_out += 1;
    }
    emit_event(ctl::SwitchDown{c->dpid});
  }
}

void OFServer::close() {
  if (listen_fd_ >= 0) {
    loop_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(conns_.size());
  for (auto& [fd, c] : conns_) all.push_back(c);
  for (auto& c : all) {
    loop_.remove(c->io->fd());
    c->io->close();
  }
  conns_.clear();
  std::lock_guard<std::mutex> lk(route_mu_);
  by_dpid_.clear();
  by_dpid_size_ = 0;
  dirty_.clear();
}

OFServer::Stats OFServer::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    s = stats_;
  }
  // Live connections' byte counters (folded in at disconnect otherwise).
  for (const auto& [fd, c] : conns_) {
    s.bytes_in += c->io->stats().bytes_in;
    s.bytes_out += c->io->stats().bytes_out;
  }
  return s;
}

} // namespace legosdn::southbound
