// One framed OF 1.0 byte stream over a nonblocking socket.
//
// Owns the receive ring (frame reassembly across partial reads, validated by
// wire10::peek_frame so a hostile length field can never wedge or mis-frame
// the stream) and the send ring (coalesced flushes: frames accumulate and a
// single writev pushes the batch). The send ring is the only cross-thread
// surface — dispatcher lanes enqueue() encoded replies while the loop thread
// flushes — so it is mutex-guarded; everything else is loop-thread-only.
//
// Backpressure: the connection only reports watermark state
// (should_pause_reads / should_resume_reads); the owning server decides,
// because pausing means dropping EPOLLIN interest, and epoll registration
// belongs to the server's loop.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <span>

#include "openflow/wire10.hpp"
#include "southbound/ring_buffer.hpp"

namespace legosdn::southbound {

class OFConnection {
public:
  struct Limits {
    std::size_t high_watermark = 1 << 20; ///< pause reads above this backlog
    std::size_t low_watermark = 64 << 10; ///< resume reads at/below this
    std::size_t max_frame = of::wire10::kMaxFrameLen;
    std::size_t read_chunk = 16 << 10;    ///< readv target per syscall
    std::size_t max_read_per_pass = 256 << 10; ///< fairness cap per io pass
  };

  enum class IoStatus : std::uint8_t {
    kOk,         ///< made progress (possibly zero bytes: EAGAIN)
    kPeerClosed, ///< orderly EOF
    kError,      ///< socket error; connection unusable
    kProtocol,   ///< malformed framing; connection must be dropped
  };

  using FrameFn = std::function<void(std::span<const std::uint8_t> frame)>;

  /// Takes ownership of `fd` (closed on destruction).
  OFConnection(int fd, Limits limits);
  ~OFConnection();

  OFConnection(const OFConnection&) = delete;
  OFConnection& operator=(const OFConnection&) = delete;

  int fd() const noexcept { return fd_; }
  bool closed() const noexcept { return closed_; }

  /// Loop thread: shut the socket down. enqueue() fails afterwards.
  void close();

  /// Loop thread: drain the socket into the receive ring and invoke
  /// `on_frame` for every complete frame (bounded by max_read_per_pass;
  /// level-triggered epoll re-reports the rest).
  IoStatus read_frames(const FrameFn& on_frame);

  /// Any thread: append one encoded frame to the send ring.
  /// Returns false when the connection is closed.
  bool enqueue(std::span<const std::uint8_t> frame);

  /// Loop thread: writev as much of the send ring as the kernel accepts.
  IoStatus flush();

  /// Thread-safe: bytes waiting in the send ring.
  std::size_t pending_out() const;

  bool should_pause_reads() const { return pending_out() >= limits_.high_watermark; }
  bool should_resume_reads() const { return pending_out() <= limits_.low_watermark; }

  struct Stats {
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

private:
  const int fd_;
  const Limits limits_;
  bool closed_ = false;

  RingBuffer in_;
  std::vector<std::uint8_t> frame_scratch_; ///< linearizes wrapped frames

  mutable std::mutex out_mu_;
  RingBuffer out_;
  std::uint64_t frames_enqueued_ = 0; ///< under out_mu_; folded into stats_

  Stats stats_;
};

} // namespace legosdn::southbound
