#include "southbound/southbound_bridge.hpp"

namespace legosdn::southbound {

SouthboundBridge::SouthboundBridge(netsim::Network& net,
                                   ctl::Controller& controller, Config cfg)
    : net_(net), controller_(&controller), cfg_(std::move(cfg)) {}

SouthboundBridge::~SouthboundBridge() {
  clients_.clear();
  server_.close();
}

Status SouthboundBridge::start() {
  // Wire batching: every complete frame of one socket read pass is injected
  // as a single ordered span (engine mode turns it into one submit_batch).
  server_.set_event_batch([this](std::vector<ctl::Event> events) {
    controller_->inject_events(std::move(events));
  });
  auto st = server_.listen(cfg_.server, [this](ctl::Event e) {
    controller_->inject_event(std::move(e));
  });
  if (!st) return st;

  reattach_network_hooks();
  // Controller-side hooks (shared with retarget()).
  retarget(*controller_);
  return Status::success();
}

void SouthboundBridge::reattach_network_hooks() {
  // Switch-originated messages cross the wire via the switch's client.
  net_.set_northbound([this](const of::Message& msg) {
    auto it = clients_.find(of::dpid_of(msg.body));
    if (it == clients_.end() || !it->second->ready() ||
        !it->second->send(msg)) {
      stats_.northbound_dropped += 1;
    }
  });
  // Liveness transitions become real connects/disconnects; the controller
  // hears about them through handshakes and EOFs, not a callback.
  net_.set_switch_state_callback([this](DatapathId dpid, bool up) {
    if (up) {
      connect_one(dpid);
    } else {
      drop_one(dpid);
    }
  });
}

void SouthboundBridge::retarget(ctl::Controller& controller) {
  controller_ = &controller;
  // Controller-originated messages cross the wire via the owning connection.
  controller_->set_southbound([this](const of::Message& msg) {
    if (!server_.send(of::dpid_of(msg.body), msg)) stats_.southbound_dropped += 1;
  });
  controller_->set_switch_announcer([this] { announce(); });
}

void SouthboundBridge::attach_netlog(netlog::NetLog& nl) {
  netlog_ = &nl;
  nl.set_southbound([this](const of::Message& msg) {
    if (!server_.send(of::dpid_of(msg.body), msg)) stats_.southbound_dropped += 1;
  });
}

void SouthboundBridge::deliver_to_network(const of::Message& msg) {
  // In-process, controller->switch messages are applied on the lane thread
  // under the transaction's locks (the controller's transaction gate, then
  // the NetLog stripes). Over the wire they arrive back on the pump thread
  // instead, so re-acquire both in the same order here: without the stripes,
  // a lane committing (reading logical_digest) races the pump mutating the
  // same flow table; without the gate, a verifying transaction reading
  // tables network-wide races it.
  const std::function<void()> apply = [&] {
    if (netlog_) {
      netlog_->with_world_lock([&] { net_.send_to_switch(msg); });
    } else {
      net_.send_to_switch(msg);
    }
  };
  if (delivery_gate_) {
    delivery_gate_(apply);
  } else {
    apply();
  }
}

int SouthboundBridge::pump() {
  int w = server_.poll(0);
  w += client_loop_.poll(0);
  return w;
}

void SouthboundBridge::connect_one(DatapathId dpid) {
  const netsim::SimSwitch* sw = net_.switch_at(dpid);
  if (!sw || !sw->up()) return;
  auto& client = clients_[dpid];
  if (client && client->ready()) return;
  if (!client) {
    WireSwitchClient::Config cc;
    cc.dpid = dpid;
    cc.features = sw->features();
    cc.limits = cfg_.server.limits;
    client = std::make_unique<WireSwitchClient>(
        client_loop_, std::move(cc),
        // Controller->switch messages land on the same entry point the
        // in-process adapter uses; decode restored the dpid from the
        // connection, so routing is identical.
        [this](const of::Message& msg) { deliver_to_network(msg); });
  }
  client->connect("127.0.0.1", server_.port());
}

void SouthboundBridge::drop_one(DatapathId dpid) {
  // Destroying the client closes the socket; the server notices EOF on the
  // next pump and emits SwitchDown.
  clients_.erase(dpid);
}

void SouthboundBridge::announce() {
  // Sequential handshakes in switch-id order: SwitchUp events reach the
  // controller in exactly the order the in-process announcer injects them.
  for (const DatapathId dpid : net_.switch_ids()) {
    const netsim::SimSwitch* sw = net_.switch_at(dpid);
    if (!sw || !sw->up()) continue;
    auto it = clients_.find(dpid);
    if (it != clients_.end() && it->second->ready() && server_.knows(dpid)) {
      // Controller restart over a surviving connection: re-announce without
      // a reconnect, as a live OF channel would.
      controller_->inject_event(ctl::SwitchUp{dpid, sw->features()});
      continue;
    }
    connect_one(dpid);
    // Drive this one handshake to completion before announcing the next.
    int idle = 0;
    while (!server_.knows(dpid) && idle < 1'000) {
      idle = pump() == 0 ? idle + 1 : 0;
    }
  }
}

void SouthboundBridge::settle() {
  int calm = 0;
  for (std::size_t guard = 0; calm < 2 && guard < 5'000'000; ++guard) {
    int w = pump();
    w += static_cast<int>(controller_->run());
    calm = w == 0 ? calm + 1 : 0;
  }
}

} // namespace legosdn::southbound
