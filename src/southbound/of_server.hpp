// Epoll-based OpenFlow 1.0 southbound server.
//
// One EventLoop multiplexes the listening socket plus every switch
// connection. Per connection: an OF handshake state machine
// (HELLO -> FEATURES_REQUEST/REPLY -> steady state), frame reassembly via
// OFConnection, ECHO keepalive with idle-timeout disconnect, and high/low
// watermark backpressure (reads pause while a peer's send ring is
// saturated, resume once it drains below the low mark).
//
// Threading: poll() runs on exactly one thread. send() is callable from any
// thread (dispatcher lanes emit flow-mods from NetLog commits): it encodes
// onto the owning connection's send ring, marks the connection dirty, and
// wakes the loop, which flushes dirty connections with coalesced writev
// calls on its next pass. Decoded steady-state frames surface as
// ctl::Event through the event callback — dpid routing onto dispatcher
// lanes preserves per-switch ordering end-to-end from the wire.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "controller/event.hpp"
#include "southbound/event_loop.hpp"
#include "southbound/of_connection.hpp"

namespace legosdn::southbound {

struct OFServerConfig {
  std::string bind_addr = "127.0.0.1";
  std::uint16_t port = 0; ///< 0 = ephemeral (bound port via OFServer::port())
  int backlog = 1024;
  std::size_t max_connections = 64 << 10;
  /// Keepalive: probe an idle peer after echo_interval_ms of silence and
  /// disconnect after idle_timeout_ms without any bytes. 0 disables each.
  std::uint64_t echo_interval_ms = 5'000;
  std::uint64_t idle_timeout_ms = 15'000;
  /// Timer sweeps walk every connection; amortize at connection scale.
  std::uint64_t timer_sweep_ms = 100;
  OFConnection::Limits limits{};
  int sndbuf = 0; ///< per-conn SO_SNDBUF (0 = kernel default; tests shrink it)
  /// Injectable clock (ms, monotonic). Tests drive timeouts manually;
  /// defaults to steady_clock.
  std::function<std::uint64_t()> now_ms{};
};

class OFServer {
public:
  using EventFn = std::function<void(ctl::Event)>;
  using BatchFn = std::function<void(std::vector<ctl::Event>)>;

  OFServer();
  ~OFServer();

  OFServer(const OFServer&) = delete;
  OFServer& operator=(const OFServer&) = delete;

  /// Bind + listen. The event callback receives SwitchUp (handshake
  /// complete, features decoded from the wire), SwitchDown (EOF, error,
  /// protocol violation, idle timeout), and every steady-state event-type
  /// message (packet-in, flow-removed, ...).
  Status listen(OFServerConfig cfg, EventFn on_event);

  /// Wire batching (DESIGN.md §4.7): when set, events are delivered as
  /// ordered spans instead of one callback per event — every complete frame
  /// decoded during one socket read pass forms one batch, submitted once per
  /// readable socket (SwitchUp/SwitchDown raised mid-pass ride along in
  /// order). Events raised outside a read pass (idle-timeout SwitchDown)
  /// arrive as single-element batches. Replaces the per-event callback for
  /// event delivery; call before listen().
  void set_event_batch(BatchFn fn) { on_batch_ = std::move(fn); }

  /// The bound port (after listen; ephemeral binds resolve here).
  std::uint16_t port() const noexcept { return port_; }

  /// One reactor pass: accept/read/flush/timers. timeout_ms as epoll_wait.
  /// Returns a work count (0 = nothing happened; idle).
  int poll(int timeout_ms);

  /// Any thread: encode and enqueue `msg` for the switch owning `dpid`.
  /// False when no ready connection exists (message dropped — matching a
  /// severed OF channel) or encoding fails.
  bool send(DatapathId dpid, const of::Message& msg);

  /// Thread-safe: interrupt a blocking poll().
  void wakeup();

  /// Close the listener and every connection (no SwitchDown events).
  void close();

  std::size_t connections() const noexcept { return conns_.size(); }
  std::size_t ready_connections() const noexcept { return by_dpid_size_; }

  /// Thread-safe: does a handshake-complete connection own this dpid?
  bool knows(DatapathId dpid) const {
    std::lock_guard<std::mutex> lk(route_mu_);
    return by_dpid_.find(dpid) != by_dpid_.end();
  }

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t accept_overflow = 0; ///< refused: max_connections
    std::uint64_t handshakes = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t echo_probes = 0;
    std::uint64_t echo_timeouts = 0;
    std::uint64_t events_out = 0;
    std::uint64_t event_batches = 0; ///< batch deliveries (set_event_batch)
    std::uint64_t sends = 0;
    std::uint64_t sends_dropped = 0;
    std::uint64_t wakeups = 0; ///< eventfd pokes issued by cross-thread send()
    std::uint64_t reads_paused = 0;
    std::uint64_t reads_resumed = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t frames_in = 0;
  };
  Stats stats() const;

private:
  enum class HandshakeState : std::uint8_t { kAwaitHello, kAwaitFeatures, kSteady };

  struct Conn {
    std::unique_ptr<OFConnection> io;
    HandshakeState state = HandshakeState::kAwaitHello;
    DatapathId dpid{};
    std::uint64_t last_rx_ms = 0;
    bool echo_outstanding = false;
    std::uint64_t echo_sent_ms = 0;
    bool reads_paused = false;
    bool want_writable = false; ///< EPOLLOUT armed (partial flush pending)
    bool in_dirty = false; ///< on the dirty list already (guarded by route_mu_)
    std::uint32_t next_xid = 1;
  };

  std::uint64_t now_ms() const;
  void on_listen_ready();
  void on_conn_io(int fd, std::uint32_t events);
  void handle_frame(const std::shared_ptr<Conn>& c,
                    std::span<const std::uint8_t> frame);
  /// Deliver one event: appended to the open read-pass batch, sent as a
  /// single-element batch, or handed to the per-event callback.
  void emit_event(ctl::Event e);
  /// Mark a conn for the next flush sweep; one eventfd wake per
  /// empty->non-empty dirty transition per poll cycle (wake_pending_).
  void mark_dirty(const std::shared_ptr<Conn>& c, bool from_loop_thread);
  void enqueue_msg(const std::shared_ptr<Conn>& c, const of::Message& msg);
  /// Flush + rebalance epoll interest (EPOLLOUT arming, watermark
  /// pause/resume). Returns false when the conn died.
  bool service_out(const std::shared_ptr<Conn>& c);
  void update_read_interest(const std::shared_ptr<Conn>& c);
  std::uint32_t interest_of(const Conn& c) const;
  void disconnect(const std::shared_ptr<Conn>& c, bool emit_switch_down);
  void sweep_timers();

  OFServerConfig cfg_;
  EventFn on_event_;
  BatchFn on_batch_;
  EventLoop loop_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  // Loop-thread owned.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  std::uint64_t last_sweep_ms_ = 0;
  int work_ = 0; ///< accumulated work count for the current poll() pass
  bool batch_open_ = false; ///< a read pass is accumulating pending_batch_
  std::vector<ctl::Event> pending_batch_;

  // Cross-thread: dpid -> ready conn (send()), dirty list (pending flushes).
  mutable std::mutex route_mu_;
  std::unordered_map<DatapathId, std::shared_ptr<Conn>> by_dpid_;
  std::size_t by_dpid_size_ = 0; ///< mirrors by_dpid_ for lock-free reads
  std::vector<std::shared_ptr<Conn>> dirty_; ///< unique (Conn::in_dirty)
  /// True once a send() has poked the eventfd this poll cycle; cleared when
  /// the loop wakes. Coalesces N cross-thread sends into one wake even when
  /// the dirty list empties and refills repeatedly within a cycle.
  std::atomic<bool> wake_pending_{false};

  mutable std::mutex stats_mu_;
  Stats stats_;
};

} // namespace legosdn::southbound
