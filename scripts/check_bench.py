#!/usr/bin/env python3
"""Bench output gate: structural checks for every BENCH_*.json, plus a
regression gate for benches that declare a headline metric.

Usage: check_bench.py [--baseline-dir DIR] [--max-regression N] PATH...

PATH is a JSON file or a directory (scanned for BENCH_*.json). Every file
must be a non-empty JSON object; a "rows" key, when present, must be a
non-empty list of objects. Files carrying a top-level "headline" object (the
convention for benches whose trajectory CI tracks) must have a positive
numeric headline.speedup; when a committed baseline of the same filename
exists in --baseline-dir, the fresh speedup must not fall more than
--max-regression times below it. The floor is deliberately loose — CI runners
vary wildly — so only an order-of-magnitude collapse (a serialization bug, a
disabled shard pool) trips it, not runner noise.
"""

import argparse
import json
import sys
from pathlib import Path


def fail(msg: str) -> None:
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_structure(path: Path, doc) -> None:
    if not isinstance(doc, dict) or not doc:
        fail(f"{path}: expected a non-empty JSON object")
    rows = doc.get("rows")
    if rows is not None:
        if not isinstance(rows, list) or not rows:
            fail(f"{path}: 'rows' must be a non-empty list")
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or not row:
                fail(f"{path}: rows[{i}] must be a non-empty object")


BATCH_STAT_KEYS = (
    "batches",
    "events_per_batch_p50",
    "events_per_batch_max",
    "lock_acquisitions",
)


def check_throughput(path: Path, doc) -> None:
    """Schema for BENCH_throughput.json: per-(workload, shards) rows with the
    batching flags (batched, batch_size, cpu_oversubscribed), a batch-size
    sweep, and a batched-vs-unbatched headline. Speedup floors are skipped —
    but structure checks are not — for rows flagged cpu_oversubscribed
    (shards > host CPUs: lanes time-slice one core, so lock amortization
    cannot buy wall-clock there and a floor would only measure the runner)."""
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: 'rows' must be a non-empty list")
    for i, row in enumerate(rows):
        for key in ("shards", "batch_size", "events_per_sec", "p50_us", "p99_us"):
            if not isinstance(row.get(key), (int, float)):
                fail(f"{path}: rows[{i}].{key} must be numeric")
        if not isinstance(row.get("workload"), str):
            fail(f"{path}: rows[{i}].workload must be a string")
        for key in ("batched", "cpu_oversubscribed"):
            if not isinstance(row.get(key), bool):
                fail(f"{path}: rows[{i}].{key} must be a boolean")
        if row["shards"] > 1:
            for key in BATCH_STAT_KEYS:
                if not isinstance(row.get(key), (int, float)):
                    fail(f"{path}: rows[{i}].{key} must be numeric (sharded row)")
            if row.get("batches", 0) <= 0 or row.get("lock_acquisitions", 0) <= 0:
                fail(f"{path}: rows[{i}]: sharded row reports no batch activity")

    sweep = doc.get("batch_sweep")
    if not isinstance(sweep, list) or len(sweep) < 2:
        fail(f"{path}: 'batch_sweep' must list at least an unbatched and a "
             "batched cell")
    sizes = [r.get("batch_size") for r in sweep]
    if sizes != sorted(sizes) or sizes[0] != 1:
        fail(f"{path}: batch_sweep sizes must ascend from 1, got {sizes}")

    hb = doc.get("headline_batched")
    if not isinstance(hb, dict):
        fail(f"{path}: 'headline_batched' must be an object")
    speedup = hb.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        fail(f"{path}: headline_batched.speedup must be positive, got {speedup!r}")
    oversubscribed = any(
        r.get("cpu_oversubscribed") for r in rows if r.get("shards", 0) > 1
    )
    if oversubscribed:
        # Sanity floor only: batching must never make the hot path *worse*
        # than noise allows (a quadratic in the coalescing path once showed
        # up here as 0.42x). The >=1.2x floor needs real cores to mean
        # anything, so it is skipped.
        if speedup < 0.75:
            fail(
                f"{path}: headline_batched.speedup {speedup:.2f}x collapsed "
                "below 0.75x — batching is pessimizing the hot path"
            )
    elif speedup < 1.2:
        fail(
            f"{path}: headline_batched.speedup {speedup:.2f}x below the 1.2x "
            "batched-vs-unbatched floor (host has spare CPUs; amortized "
            "locking and coalesced commits should show)"
        )


def check_southbound(path: Path, doc) -> None:
    """Schema for BENCH_southbound.json (experiment C13): the socket-scale
    bench must report a handshake-storm sweep, per-(connections, shards)
    throughput rows with the standard latency triple, and — outside smoke
    mode — an actually-driven fleet of at least 5000 concurrent connections
    (the acceptance floor for the epoll southbound)."""
    handshake = doc.get("handshake")
    if not isinstance(handshake, list) or not handshake:
        fail(f"{path}: 'handshake' must be a non-empty list")
    for i, row in enumerate(handshake):
        for key in ("connections", "ms", "per_sec"):
            if not isinstance(row.get(key), (int, float)):
                fail(f"{path}: handshake[{i}].{key} must be numeric")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: 'rows' must be a non-empty list")
    for i, row in enumerate(rows):
        for key in ("connections", "shards", "events_per_sec", "p50_us", "p99_us"):
            if not isinstance(row.get(key), (int, float)):
                fail(f"{path}: rows[{i}].{key} must be numeric")
        for key in ("batched", "cpu_oversubscribed"):
            if not isinstance(row.get(key), bool):
                fail(f"{path}: rows[{i}].{key} must be a boolean")
        for key in ("wire_batches", "wakeups", *BATCH_STAT_KEYS):
            if not isinstance(row.get(key), (int, float)):
                fail(f"{path}: rows[{i}].{key} must be numeric")
    max_conns = doc.get("max_connections")
    if not isinstance(max_conns, int) or max_conns <= 0:
        fail(f"{path}: max_connections must be a positive integer")
    if not doc.get("smoke") and max_conns < 5000:
        fail(
            f"{path}: max_connections {max_conns} below the 5000-connection "
            "floor for a full (non-smoke) southbound run"
        )


FAILOVER_STORIES = (
    "monolithic_cold_reboot",
    "legosdn_restart",
    "replicated_failover",
)


def check_failover(path: Path, doc) -> None:
    """Schema for BENCH_failover.json (experiment C14): one row per recovery
    story, a replication-stream summary proving the follower was actually fed,
    and the monolithic-vs-replicated outage headline. The replicated row must
    beat the monolithic one outright — virtual time is deterministic, so this
    is a semantics check (warm failover must not relearn), not a perf floor."""
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: 'rows' must be a non-empty list")
    by_story = {}
    for i, row in enumerate(rows):
        if not isinstance(row.get("story"), str):
            fail(f"{path}: rows[{i}].story must be a string")
        for key in ("punts_after", "warm_ms", "state_entries"):
            if not isinstance(row.get(key), (int, float)):
                fail(f"{path}: rows[{i}].{key} must be numeric")
        if not isinstance(row.get("cpu_oversubscribed"), bool):
            fail(f"{path}: rows[{i}].cpu_oversubscribed must be a boolean")
        by_story[row["story"]] = row
    for story in FAILOVER_STORIES:
        if story not in by_story:
            fail(f"{path}: missing row for recovery story {story!r}")
    repl = doc.get("replication")
    if not isinstance(repl, dict):
        fail(f"{path}: 'replication' must be an object")
    for key in ("records_shipped", "txns_adopted", "txns_discarded"):
        if not isinstance(repl.get(key), (int, float)):
            fail(f"{path}: replication.{key} must be numeric")
    if repl["records_shipped"] <= 0:
        fail(f"{path}: replication.records_shipped is 0 — the follower was "
             "never fed, so the failover row measured a cold controller")
    mono = by_story["monolithic_cold_reboot"]
    warm = by_story["replicated_failover"]
    if warm["warm_ms"] >= mono["warm_ms"]:
        fail(f"{path}: replicated failover outage ({warm['warm_ms']}ms) is no "
             f"better than a monolithic cold reboot ({mono['warm_ms']}ms)")
    if warm["punts_after"] > 0:
        fail(f"{path}: replicated failover punted {warm['punts_after']} flows "
             "— promotion relearned state it should have inherited warm")


def headline_speedup(path: Path, doc) -> float | None:
    headline = doc.get("headline")
    if headline is None:
        return None
    if not isinstance(headline, dict):
        fail(f"{path}: 'headline' must be an object")
    speedup = headline.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        fail(f"{path}: headline.speedup must be a positive number, got {speedup!r}")
    return float(speedup)


def check_file(path: Path, baseline_dir: Path, max_regression: float) -> str:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    check_structure(path, doc)
    if doc.get("bench") == "southbound":
        check_southbound(path, doc)
    if doc.get("bench") == "throughput":
        check_throughput(path, doc)
    if doc.get("bench") == "failover":
        check_failover(path, doc)

    speedup = headline_speedup(path, doc)
    if speedup is None:
        return f"{path}: structure ok (no headline)"

    base_path = baseline_dir / path.name
    if not base_path.is_file():
        return f"{path}: headline speedup {speedup:.2f}x (no baseline at {base_path})"
    base_doc = json.loads(base_path.read_text())
    base = headline_speedup(base_path, base_doc)
    if base is None:
        return f"{path}: headline speedup {speedup:.2f}x (baseline has no headline)"
    floor = base / max_regression
    if speedup < floor:
        fail(
            f"{path}: headline speedup {speedup:.2f}x regressed below "
            f"{floor:.2f}x (baseline {base:.2f}x / {max_regression:g})"
        )
    return f"{path}: headline speedup {speedup:.2f}x >= floor {floor:.2f}x (baseline {base:.2f}x)"


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="+", type=Path)
    ap.add_argument("--baseline-dir", type=Path, default=Path("."))
    ap.add_argument("--max-regression", type=float, default=5.0)
    args = ap.parse_args()

    files: list[Path] = []
    for p in args.paths:
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        else:
            files.append(p)
    if not files:
        fail(f"no bench JSON files found under {[str(p) for p in args.paths]}")

    for f in files:
        print(check_file(f, args.baseline_dir, args.max_regression))
    print(f"check_bench: {len(files)} file(s) ok")


if __name__ == "__main__":
    main()
