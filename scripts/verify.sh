#!/usr/bin/env bash
# Tier-1 verify flow: plain build + full test suite, then the same suite
# under ASan+UBSan (skip the sanitizer pass with LEGOSDN_SKIP_ASAN=1).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j
ctest --preset default

if [ "${LEGOSDN_SKIP_ASAN:-0}" != "1" ]; then
  cmake --preset asan
  cmake --build --preset asan -j
  ctest --preset asan
fi
