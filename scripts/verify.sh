#!/usr/bin/env bash
# Single verification entry point — CI calls exactly this script, so a local
# `scripts/verify.sh <cmd>` reproduces any CI job bit-for-bit.
#
# Usage: scripts/verify.sh [command]
#
#   (none)       tier-1 flow: build + asan (the pre-commit gate)
#   build        configure + build + ctest. Honours BUILD_TYPE (default
#                RelWithDebInfo), CC/CXX, and CMAKE_CXX_COMPILER_LAUNCHER
#                (CI sets ccache); out-of-source in build-ci/ when any of
#                those is set, the plain `default` preset otherwise.
#   asan         the asan preset (ASan+UBSan) build + ctest.
#   tsan         the tsan preset (ThreadSanitizer) build, then the
#                concurrency-relevant test binaries run directly (controller,
#                legosdn, checkpoint, netlog, sharded dispatch) — the gate
#                for the sharded parallel event pipeline. Honours
#                LEGOSDN_SHARD_DIFF_SEEDS (default 10 here: TSan is ~15x
#                slower and the differential runs at 50 seeds in plain ctest).
#   socket-tests the loopback-socket suites (southbound epoll server, OF 1.0
#                wire codec) run directly from a release build. These open
#                real TCP sockets; the dedicated CI job keeps an EMFILE or
#                firewalled runner from reading as a logic regression in the
#                main matrix.
#   bench-smoke  run the JSON-emitting benches (checkpoint, isolation
#                latency, flow table, netlog, micro, throughput, southbound,
#                failover) with tiny iteration counts
#                (LEGOSDN_BENCH_SMOKE=1), assert exit 0 and
#                that each emits parseable JSON into bench-out/, then gate
#                them with scripts/check_bench.py against the committed
#                BENCH_*.json baselines (order-of-magnitude floor on
#                headline speedups).
#   fuzz-smoke   run the differential scenario fuzzer over a reduced seed
#                batch (LEGOSDN_FUZZ_SCRIPTS, default 20): every generated
#                churn script must converge identically under LegoSDN-with-
#                faults and the fault-free monolithic reference.
#   format       clang-format --dry-run -Werror over src/ tests/ bench/.
#                Skips (exit 0) when clang-format is not installed locally;
#                CI pins a version so the check is authoritative there.
set -euo pipefail
cd "$(dirname "$0")/.."

cmd_build() {
  if [ -n "${BUILD_TYPE:-}" ] || [ -n "${CC:-}" ] || [ -n "${CXX:-}" ] ||
     [ -n "${CMAKE_CXX_COMPILER_LAUNCHER:-}" ]; then
    local dir="build-ci"
    cmake -B "$dir" -S . \
      -DCMAKE_BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}" \
      ${CMAKE_CXX_COMPILER_LAUNCHER:+-DCMAKE_CXX_COMPILER_LAUNCHER="$CMAKE_CXX_COMPILER_LAUNCHER"} \
      ${CMAKE_CXX_COMPILER_LAUNCHER:+-DCMAKE_C_COMPILER_LAUNCHER="$CMAKE_CXX_COMPILER_LAUNCHER"}
    cmake --build "$dir" -j "$(nproc)"
    ctest --test-dir "$dir" --output-on-failure -j "$(nproc)"
  else
    cmake --preset default
    cmake --build --preset default -j "$(nproc)"
    ctest --preset default
  fi
}

cmd_asan() {
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan
}

cmd_tsan() {
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  # GTest registers Suite.Test names with ctest, so running the binaries
  # directly is both faster and gives one TSan report per suite. These are
  # the suites that exercise the shard lanes, stripe locks and the
  # checkpoint worker — the code TSan exists to police.
  local t
  for t in controller_test sharded_dispatch_test legosdn_test \
           checkpoint_test checkpoint_pipeline_test netlog_test \
           southbound_test; do
    echo "== tsan: $t =="
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    LEGOSDN_SHARD_DIFF_SEEDS="${LEGOSDN_SHARD_DIFF_SEEDS:-10}" \
      "./build-tsan/tests/$t" --gtest_brief=1
  done
}

cmd_socket_tests() {
  local dir="build"
  [ -d build-ci ] && dir="build-ci"
  cmake --build "$dir" -j "$(nproc)" --target southbound_test wire10_test
  local t
  for t in southbound_test wire10_test; do
    echo "== socket: $t =="
    "./$dir/tests/$t" --gtest_brief=1
  done
}

cmd_bench_smoke() {
  local dir="build"
  [ -d build-ci ] && dir="build-ci"
  local benches="bench_checkpoint bench_isolation_latency bench_flow_table bench_netlog bench_micro bench_throughput bench_southbound bench_failover"
  # shellcheck disable=SC2086
  cmake --build "$dir" -j "$(nproc)" --target $benches
  mkdir -p bench-out
  local bench
  for bench in $benches; do
    local json="bench-out/BENCH_${bench#bench_}.json"
    LEGOSDN_BENCH_SMOKE=1 LEGOSDN_BENCH_JSON="$json" "./$dir/bench/$bench"
  done
  python3 scripts/check_bench.py bench-out --baseline-dir .
}

cmd_fuzz_smoke() {
  local dir="build"
  [ -d build-ci ] && dir="build-ci"
  cmake --build "$dir" -j "$(nproc)" --target scenario_fuzz_test
  LEGOSDN_FUZZ_SCRIPTS="${LEGOSDN_FUZZ_SCRIPTS:-20}" \
    "./$dir/tests/scenario_fuzz_test" --gtest_brief=1
}

cmd_format() {
  if ! command -v clang-format >/dev/null 2>&1; then
    echo "clang-format not installed; skipping format check (CI enforces it)"
    return 0
  fi
  clang-format --version
  find src tests bench -name '*.cpp' -o -name '*.hpp' | xargs \
    clang-format --dry-run -Werror
}

case "${1:-all}" in
  build)        cmd_build ;;
  asan)         cmd_asan ;;
  tsan)         cmd_tsan ;;
  socket-tests) cmd_socket_tests ;;
  bench-smoke)  cmd_bench_smoke ;;
  fuzz-smoke)   cmd_fuzz_smoke ;;
  format)       cmd_format ;;
  all)
    cmd_build
    if [ "${LEGOSDN_SKIP_ASAN:-0}" != "1" ]; then
      cmd_asan
    fi
    ;;
  *)
    echo "unknown command: $1 (expected build|asan|tsan|socket-tests|bench-smoke|fuzz-smoke|format)" >&2
    exit 2
    ;;
esac
